package frame

import (
	"math"
	"strings"
	"testing"
)

func TestInferCSVKinds(t *testing.T) {
	csv := `age,job,bio
18,eng,loves long walks and graph databases
40,doc,writes about hospitals and hiking trails every week
37,eng,cooks elaborate meals and reviews obscure films
,doc,collects vintage synthesizers and paints tiny robots
25,nurse,runs marathons and builds mechanical keyboards
`
	d, err := InferCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 5 || d.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", d.NumRows(), d.NumCols())
	}
	if d.Column("age").Kind != Numeric {
		t.Fatalf("age inferred as %v", d.Column("age").Kind)
	}
	if d.Column("job").Kind != Categorical {
		t.Fatalf("job inferred as %v", d.Column("job").Kind)
	}
	if d.Column("bio").Kind != Text {
		t.Fatalf("bio inferred as %v", d.Column("bio").Kind)
	}
	if !math.IsNaN(d.Column("age").Num[3]) {
		t.Fatal("empty numeric cell should be missing")
	}
}

func TestInferCSVMissingTokens(t *testing.T) {
	csv := "x,y\n1,a\nNA,null\n3,b\n"
	d, err := InferCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if d.Column("x").Kind != Numeric {
		t.Fatal("NA should not break numeric inference")
	}
	if !math.IsNaN(d.Column("x").Num[1]) {
		t.Fatal("NA not treated as missing")
	}
	if d.Column("y").Str[1] != "" {
		t.Fatal("null not treated as missing")
	}
}

func TestInferCSVLargeDistinctSetIsText(t *testing.T) {
	var b strings.Builder
	b.WriteString("id\n")
	for i := 0; i < 100; i++ {
		b.WriteString(strings.Repeat("x", i%7+1))
		b.WriteString("-")
		b.WriteString(string(rune('a' + i%26)))
		b.WriteString(string(rune('a' + (i/26)%26)))
		b.WriteString("\n")
	}
	d, err := InferCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Column("id").Kind != Text {
		t.Fatalf("high-cardinality strings inferred as %v", d.Column("id").Kind)
	}
}

func TestInferCSVErrors(t *testing.T) {
	if _, err := InferCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := InferCSV(strings.NewReader("a,\n1,2\n")); err == nil {
		t.Fatal("empty header should error")
	}
}

func TestInferCSVFullyMissingColumn(t *testing.T) {
	d, err := InferCSV(strings.NewReader("a,b\n1,\n2,\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Column("b").Kind != Categorical {
		t.Fatalf("fully missing column inferred as %v", d.Column("b").Kind)
	}
}
