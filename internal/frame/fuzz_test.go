package frame

import (
	"strings"
	"testing"
)

// FuzzInferCSV feeds arbitrary text to the schema-inferring CSV reader:
// it must either return a structurally consistent dataframe or an error,
// and never panic.
func FuzzInferCSV(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("age\n1\n2\nNA\n")
	f.Add("t\nhello world this is text\nmore words here too yes\n")
	f.Add("")
	f.Add("a,a\n1,2\n")
	f.Add("x\n\"unterminated\n")
	f.Add("h1,h2,h3\n1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		defer func() {
			if r := recover(); r != nil {
				// Duplicate headers panic in add(); everything else must not.
				if !strings.Contains(toString(r), "duplicate column") {
					t.Fatalf("panic on input %q: %v", input, r)
				}
			}
		}()
		d, err := InferCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Structural consistency: every column has NumRows entries.
		n := d.NumRows()
		for _, c := range d.Columns() {
			if c.Len() != n {
				t.Fatalf("column %q has %d rows, frame has %d", c.Name, c.Len(), n)
			}
		}
	})
}

func toString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	if e, ok := v.(error); ok {
		return e.Error()
	}
	return ""
}

// FuzzCSVRoundTrip checks that anything InferCSV accepts can be written
// back out and re-read.
func FuzzCSVRoundTrip(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("n\n1.5\n-2\n")
	f.Fuzz(func(t *testing.T, input string) {
		defer func() { recover() }() // duplicate headers, see above
		d, err := InferCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV failed on accepted input: %v", err)
		}
		if _, err := InferCSV(strings.NewReader(buf.String())); err != nil && d.NumRows() > 0 {
			t.Fatalf("round trip failed: %v\noriginal: %q\nwritten: %q", err, input, buf.String())
		}
	})
}
