// Package monitor implements the serving-side integration the paper's
// introduction motivates: "end users and serving systems can raise alarms
// if this estimate is significantly below the expected prediction quality
// of the black box model". A Monitor consumes a stream of serving
// batches, records the performance predictor's estimate for each, applies
// an alarm policy with optional hysteresis (k consecutive violating
// batches before an alarm fires, suppressing one-off flukes), and keeps a
// bounded history for dashboards and postmortems.
package monitor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"blackboxval/internal/core"
	"blackboxval/internal/data"
	"blackboxval/internal/linalg"
	"blackboxval/internal/obs"
	"blackboxval/internal/stats"
)

// Config configures a Monitor.
type Config struct {
	// Predictor estimates the score per batch. Required.
	Predictor *core.Predictor
	// Validator optionally contributes its binary decision per batch; when
	// set, a batch counts as violating if EITHER the estimate drops below
	// the threshold line or the validator raises an alarm.
	Validator *core.Validator
	// Threshold is the tolerated relative score drop for the
	// estimate-based alarm (default 0.05).
	Threshold float64
	// Hysteresis is the number of consecutive violating batches required
	// before Alarming flips to true (default 1: alarm immediately).
	Hysteresis int
	// HistoryLimit bounds the retained per-batch records (default 1024).
	HistoryLimit int
	// WindowSize is the number of single predictions per evaluation
	// window for row-level observation via ObserveRow (default 500).
	// Batch-level Observe/ObserveProba ignore it.
	WindowSize int
	// TimelineWindow is how many observed batches aggregate into one
	// drift-timeline window (default 1: one window per batch).
	TimelineWindow int
	// TimelineCapacity bounds the retained closed timeline windows
	// (default 128).
	TimelineCapacity int
	// DashboardRefresh is the auto-refresh interval of the HTML
	// dashboard's /timeline poll (default 5s; <0 disables auto-refresh).
	DashboardRefresh time.Duration
	// Tracer records the monitor_observe spans of sampled traces (nil =
	// obs.DefaultTracer()). A monitor embedded in a gateway process may
	// share the gateway's tracer or, behind its own journal, keep a
	// separate per-component trace stream.
	Tracer *obs.Tracer
}

func (c *Config) defaults() {
	if c.Threshold == 0 {
		c.Threshold = 0.05
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 1
	}
	if c.HistoryLimit == 0 {
		c.HistoryLimit = 1024
	}
	if c.WindowSize == 0 {
		c.WindowSize = 500
	}
	if c.TimelineWindow <= 0 {
		c.TimelineWindow = 1
	}
	if c.TimelineCapacity <= 0 {
		c.TimelineCapacity = 128
	}
	if c.DashboardRefresh == 0 {
		c.DashboardRefresh = 5 * time.Second
	}
	if c.Tracer == nil {
		c.Tracer = obs.DefaultTracer()
	}
}

// Record is the monitoring outcome for one serving batch.
type Record struct {
	// Seq is the 0-based index of the batch in the stream.
	Seq int
	// Size is the number of examples in the batch.
	Size int
	// Estimate is the predictor's score estimate.
	Estimate float64
	// EstimateViolation is true when Estimate fell below (1-t)*testScore.
	EstimateViolation bool
	// ValidatorViolation is the validator's decision (false when no
	// validator is configured).
	ValidatorViolation bool
	// Violating is the combined per-batch verdict.
	Violating bool
	// Alarming reports the monitor state after this batch, i.e. whether
	// the hysteresis run length has been reached.
	Alarming bool
	// RequestID is the end-to-end correlation id of the serving request
	// that produced this batch (empty when the caller did not carry one,
	// e.g. file-watch batches or ObserveRow windows).
	RequestID string `json:",omitempty"`
	// TraceID is the W3C trace id of the serving request (empty for
	// untraced batches): the key that opens the cross-process waterfall
	// at /debug/traces/{traceid} or via ppm-diagnose -trace.
	TraceID string `json:",omitempty"`
	// Window is the drift-timeline window index this batch lands in —
	// the served-at timestamp label feedback joins against, so label lag
	// is measured in windows rather than inferred from Seq.
	Window int64
	// KS holds the per-class two-sample Kolmogorov–Smirnov D statistic
	// between this batch's output column and the held-out test outputs.
	// Nil for row-streamed windows (no full output sample available).
	KS []float64 `json:",omitempty"`
	// KSMax is the largest per-class KS statistic — the headline drift
	// signal for the timeline.
	KSMax float64 `json:",omitempty"`
	// P50Shift is the per-class shift of the output median against the
	// test outputs (serving p50 minus test p50). Nil for row-streamed
	// windows.
	P50Shift []float64 `json:",omitempty"`
}

// Monitor tracks the estimated performance of one deployed model. It is
// safe for concurrent use.
type Monitor struct {
	cfg  Config
	line float64 // alarm line: (1-t) * testScore

	// timeline is the windowed drift store fed by commit; it has its own
	// lock and is fed outside m.mu, so OnWindowClose hooks (the alert
	// engine) may call back into the monitor.
	timeline *obs.TimeSeries
	// refCols / refP50 are the per-class reference distributions (held-out
	// test outputs) that serving batches drift against. refSketches are
	// the same distributions as mergeable sketches — the static half of
	// the drift-test sufficient statistics /federate ships, so a fleet
	// aggregator can recompute KS against merged serving distributions.
	refCols     [][]float64
	refP50      []float64
	refSketches map[string]*stats.KLL

	mu        sync.Mutex
	seq       int
	run       int // current consecutive-violation run length
	alarms    int
	history   []Record
	window    *core.StreamAccumulator // lazily created by ObserveRow
	observers []BatchObserver

	// Counter families wired by RegisterMetrics (nil until then).
	batchesMetric    *obs.Counter
	violationsMetric *obs.Counter
	alarmsMetric     *obs.Counter
}

// New validates the configuration and returns a ready monitor.
func New(cfg Config) (*Monitor, error) {
	cfg.defaults()
	if cfg.Predictor == nil {
		return nil, fmt.Errorf("monitor: a predictor is required")
	}
	if cfg.Threshold < 0 || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("monitor: threshold %v out of [0,1)", cfg.Threshold)
	}
	if cfg.Hysteresis < 1 {
		return nil, fmt.Errorf("monitor: hysteresis must be >= 1")
	}
	timeline, err := obs.NewTimeSeries(obs.TimeSeriesConfig{
		Capacity:      cfg.TimelineCapacity,
		WindowBatches: cfg.TimelineWindow,
	})
	if err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	m := &Monitor{
		cfg:      cfg,
		line:     (1 - cfg.Threshold) * cfg.Predictor.TestScore(),
		timeline: timeline,
	}
	if ref := cfg.Predictor.TestOutputs(); ref != nil && ref.Rows > 0 {
		m.refCols = make([][]float64, ref.Cols)
		m.refP50 = make([]float64, ref.Cols)
		m.refSketches = make(map[string]*stats.KLL, ref.Cols)
		for c := 0; c < ref.Cols; c++ {
			m.refCols[c] = ref.Col(c)
			m.refP50[c] = stats.Percentile(m.refCols[c], 50)
			sk := stats.NewKLL()
			for _, v := range m.refCols[c] {
				sk.Add(v)
			}
			m.refSketches[probaSeries(c)] = sk
		}
	}
	return m, nil
}

// BatchObserver receives every observed batch after its record is
// committed: the raw serving rows (nil when the caller only had model
// outputs, or for row-streamed windows), the model outputs (nil for
// row-streamed windows) and the committed record. Observers run
// synchronously on the observing goroutine, before the batch's signals
// feed the drift timeline — so by the time a window close fires an
// alert hook, observers (e.g. the incident flight recorder's
// reservoir) have already seen the triggering batch.
type BatchObserver func(batch *data.Dataset, proba *linalg.Matrix, rec Record)

// OnObserve registers fn as a batch observer. Register before traffic
// starts.
func (m *Monitor) OnObserve(fn BatchObserver) {
	m.mu.Lock()
	m.observers = append(m.observers, fn)
	m.mu.Unlock()
}

func (m *Monitor) notifyObservers(batch *data.Dataset, proba *linalg.Matrix, rec Record) {
	m.mu.Lock()
	observers := m.observers
	m.mu.Unlock()
	for _, fn := range observers {
		fn(batch, proba, rec)
	}
}

// Observe runs the black box on the batch and records the outcome. Use
// ObserveProba when the model outputs are already available (e.g. logged
// by the serving system).
func (m *Monitor) Observe(batch *data.Dataset) Record {
	return m.ObserveBatchProbaID(batch, m.cfg.Predictor.Model().PredictProba(batch), "")
}

// ObserveProba records the outcome for a batch of model outputs.
func (m *Monitor) ObserveProba(proba *linalg.Matrix) Record {
	return m.ObserveBatchProbaID(nil, proba, "")
}

// ObserveProbaID is ObserveProba with an end-to-end correlation id: the
// gateway passes the request's X-Request-ID so a serving request can be
// traced from proxy log to shadow-validation verdict.
func (m *Monitor) ObserveProbaID(proba *linalg.Matrix, requestID string) Record {
	return m.ObserveBatchProbaID(nil, proba, requestID)
}

// ObserveBatchProbaID is the full observation entry point: model
// outputs plus, when the caller has them, the raw serving rows that
// produced them (handed to batch observers for incident forensics) and
// the end-to-end correlation id. batch may be nil.
func (m *Monitor) ObserveBatchProbaID(batch *data.Dataset, proba *linalg.Matrix, requestID string) Record {
	return m.ObserveBatchProbaCtx(context.Background(), batch, proba, requestID)
}

// ObserveBatchProbaCtx is ObserveBatchProbaID under a context that may
// carry a W3C trace context (the gateway's shadow tap forwards the
// serving request's): sampled traces get a monitor_observe span —
// estimate, drift statistics and verdict attached — recorded into the
// monitor's tracer, and the record carries the trace id so /history
// rows link to their waterfalls.
func (m *Monitor) ObserveBatchProbaCtx(ctx context.Context, batch *data.Dataset, proba *linalg.Matrix, requestID string) Record {
	if tc, traced := obs.TraceFromContext(ctx); traced && tc.Sampled() {
		_, span := obs.StartSpan(obs.WithTracer(obs.ContextWithTrace(ctx, tc), m.cfg.Tracer), "monitor_observe")
		if requestID != "" {
			span.SetAttr("request_id", requestID)
		}
		rec := m.observeBatchProba(batch, proba, requestID, tc.TraceID.String())
		span.SetMetric("estimate", rec.Estimate)
		span.SetMetric("rows", float64(rec.Size))
		if rec.KSMax > 0 {
			span.SetMetric("ks_max", rec.KSMax)
		}
		span.SetAttr("violating", fmt.Sprintf("%t", rec.Violating))
		span.End()
		return rec
	}
	return m.observeBatchProba(batch, proba, requestID, "")
}

func (m *Monitor) observeBatchProba(batch *data.Dataset, proba *linalg.Matrix, requestID, traceID string) Record {
	estimate := m.cfg.Predictor.EstimateFromProba(proba)
	rec := Record{
		Size:              proba.Rows,
		Estimate:          estimate,
		EstimateViolation: estimate < m.line,
		RequestID:         requestID,
		TraceID:           traceID,
		Window:            m.timeline.OpenIndex(),
	}
	if m.cfg.Validator != nil {
		rec.ValidatorViolation = m.cfg.Validator.ViolationFromProba(proba)
	}
	rec.Violating = rec.EstimateViolation || rec.ValidatorViolation
	m.drift(&rec, proba)
	m.commitState(&rec)
	m.notifyObservers(batch, proba, rec)
	m.feedTimeline(&rec, proba)
	return rec
}

// drift fills the per-class distribution-shift statistics: the
// two-sample KS D between each serving output column and the held-out
// test outputs, and the shift of the column median. Skipped when the
// predictor kept no test outputs or the batch's class count disagrees
// with the reference (a misconfigured backend should not panic the
// monitor).
func (m *Monitor) drift(rec *Record, proba *linalg.Matrix) {
	if m.refCols == nil || proba.Cols != len(m.refCols) || proba.Rows == 0 {
		return
	}
	rec.KS = make([]float64, proba.Cols)
	rec.P50Shift = make([]float64, proba.Cols)
	for c := 0; c < proba.Cols; c++ {
		col := proba.Col(c)
		rec.KS[c] = stats.KolmogorovSmirnov(col, m.refCols[c]).Statistic
		rec.P50Shift[c] = stats.Percentile(col, 50) - m.refP50[c]
		if rec.KS[c] > rec.KSMax {
			rec.KSMax = rec.KS[c]
		}
	}
}

// commitState applies the hysteresis state machine and appends to
// history under m.mu. Callers feed the drift timeline afterwards (see
// feedTimeline), outside the lock: window-close hooks run on this
// goroutine and may read the monitor.
func (m *Monitor) commitState(rec *Record) {
	m.mu.Lock()
	rec.Seq = m.seq
	m.seq++
	if rec.Violating {
		m.run++
	} else {
		m.run = 0
	}
	rec.Alarming = m.run >= m.cfg.Hysteresis
	if rec.Alarming {
		m.alarms++
	}
	m.history = append(m.history, *rec)
	if len(m.history) > m.cfg.HistoryLimit {
		m.history = m.history[len(m.history)-m.cfg.HistoryLimit:]
	}
	if m.batchesMetric != nil {
		m.batchesMetric.Inc()
		if rec.Violating {
			m.violationsMetric.Inc()
		}
		if rec.Alarming {
			m.alarmsMetric.Inc()
		}
	}
	m.mu.Unlock()
}

// feedTimeline appends one record's signals to the drift timeline as a
// committed batch. Series names are stable API: dashboards and alert
// rules address them. When the batch's raw model outputs are available
// they feed per-class proba_class_<c> series, whose window sketches are
// the serving-side drift-test sufficient statistics the federation
// layer merges across replicas.
func (m *Monitor) feedTimeline(rec *Record, proba *linalg.Matrix) {
	m.timeline.Record("estimate", rec.Estimate)
	m.timeline.Record("alarm", boolSeries(rec.Alarming))
	m.timeline.Record("violation", boolSeries(rec.Violating))
	m.timeline.Record("batch_size", float64(rec.Size))
	if rec.KS != nil {
		m.timeline.Record("ks_max", rec.KSMax)
		for c := range rec.KS {
			m.timeline.Record(fmt.Sprintf("ks_class_%d", c), rec.KS[c])
			m.timeline.Record(fmt.Sprintf("p50_shift_class_%d", c), rec.P50Shift[c])
		}
	}
	if proba != nil {
		for c := 0; c < proba.Cols; c++ {
			m.timeline.RecordAll(probaSeries(c), proba.Col(c))
		}
	}
	m.timeline.Commit()
}

// probaSeries names the timeline series carrying the model's output
// distribution for one class.
func probaSeries(class int) string {
	return fmt.Sprintf("proba_class_%d", class)
}

func boolSeries(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ObserveRow consumes a single model output (one prediction's probability
// vector) for deployments that cannot batch. Rows accumulate in a P²
// streaming window of Config.WindowSize predictions; when the window
// fills, the monitor evaluates it like a batch and returns the resulting
// record with done=true. Streaming windows use only the estimate-based
// alarm: the validator's hypothesis-test features need the full output
// sample and are skipped.
func (m *Monitor) ObserveRow(probaRow []float64) (rec Record, done bool) {
	m.mu.Lock()
	if m.window == nil {
		m.window = m.cfg.Predictor.NewStreamAccumulator()
	}
	m.window.Add(probaRow)
	if m.window.Count() < m.cfg.WindowSize {
		m.mu.Unlock()
		return Record{}, false
	}
	feats := m.window.Features()
	size := m.window.Count()
	m.window.Reset()
	m.mu.Unlock()

	estimate := m.cfg.Predictor.EstimateFromFeatures(feats)
	rec = Record{
		Size:              size,
		Estimate:          estimate,
		EstimateViolation: estimate < m.line,
		Window:            m.timeline.OpenIndex(),
	}
	rec.Violating = rec.EstimateViolation
	m.commitState(&rec)
	m.notifyObservers(nil, nil, rec)
	m.feedTimeline(&rec, nil)
	return rec, true
}

// Alarming reports whether the monitor is currently in the alarm state.
func (m *Monitor) Alarming() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.run >= m.cfg.Hysteresis
}

// AlarmLine returns the score below which a batch counts as violating.
func (m *Monitor) AlarmLine() float64 { return m.line }

// Predictor returns the performance predictor the monitor estimates
// with (its retained test outputs are the reference distribution the
// incident flight recorder attributes drift against).
func (m *Monitor) Predictor() *core.Predictor { return m.cfg.Predictor }

// Timeline returns the windowed drift store. Register alert engines on
// it with Timeline().OnWindowClose(engine.Evaluate) before traffic
// starts.
func (m *Monitor) Timeline() *obs.TimeSeries { return m.timeline }

// ReferenceSketches returns the per-class reference output
// distributions (held-out test outputs) as mergeable sketches, keyed by
// the proba_class_<c> series names they drift against. Nil when the
// predictor retained no test outputs. The sketches are shared and must
// be treated as immutable.
func (m *Monitor) ReferenceSketches() map[string]*stats.KLL { return m.refSketches }

// Observed returns the number of batches (or streamed windows) the
// monitor has committed — the replica-side progress counter /federate
// exposes so aggregators and tests can tell when traffic has drained.
func (m *Monitor) Observed() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq
}

// DashboardRefresh returns the configured dashboard auto-refresh
// interval (<= 0 means auto-refresh is disabled).
func (m *Monitor) DashboardRefresh() time.Duration {
	if m.cfg.DashboardRefresh < 0 {
		return 0
	}
	return m.cfg.DashboardRefresh
}

// History returns a copy of the retained per-batch records, oldest first.
func (m *Monitor) History() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Record(nil), m.history...)
}

// Summary aggregates the monitoring history.
type Summary struct {
	Batches        int
	Violations     int
	AlarmedBatches int
	MeanEstimate   float64
	MinEstimate    float64
	LastEstimate   float64
}

// Summarize aggregates the retained history.
func (m *Monitor) Summarize() Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Summary{Batches: len(m.history)}
	if len(m.history) == 0 {
		return s
	}
	s.MinEstimate = m.history[0].Estimate
	sum := 0.0
	for _, rec := range m.history {
		sum += rec.Estimate
		if rec.Estimate < s.MinEstimate {
			s.MinEstimate = rec.Estimate
		}
		if rec.Violating {
			s.Violations++
		}
		if rec.Alarming {
			s.AlarmedBatches++
		}
	}
	s.MeanEstimate = sum / float64(len(m.history))
	s.LastEstimate = m.history[len(m.history)-1].Estimate
	return s
}
