package monitor

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"blackboxval/internal/errorgen"
)

func dashboardFixture(t *testing.T) (*Monitor, *httptest.Server) {
	t.Helper()
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, Validator: f.val, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	m.Observe(f.serving)
	m.Observe(errorgen.Scaling{}.Corrupt(f.serving, 0.95, rng))
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, srv
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestDashboardSummary(t *testing.T) {
	_, srv := dashboardFixture(t)
	var s Summary
	if code := getJSON(t, srv.URL+"/summary", &s); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if s.Batches != 2 || s.Violations < 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestDashboardHistoryWithLimit(t *testing.T) {
	_, srv := dashboardFixture(t)
	var all []Record
	if code := getJSON(t, srv.URL+"/history", &all); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(all) != 2 {
		t.Fatalf("history = %d records", len(all))
	}
	var last []Record
	if code := getJSON(t, srv.URL+"/history?limit=1", &last); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(last) != 1 || last[0].Seq != all[1].Seq {
		t.Fatalf("limited history = %+v", last)
	}
	var bad []Record
	if code := getJSON(t, srv.URL+"/history?limit=-2", &bad); code != http.StatusBadRequest {
		t.Fatalf("negative limit status = %d", code)
	}
}

func TestDashboardAlarming(t *testing.T) {
	m, srv := dashboardFixture(t)
	var out map[string]any
	if code := getJSON(t, srv.URL+"/alarming", &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out["alarming"] != m.Alarming() {
		t.Fatalf("alarming = %v, monitor says %v", out["alarming"], m.Alarming())
	}
	if out["alarm_line"].(float64) != m.AlarmLine() {
		t.Fatal("alarm line mismatch")
	}
}

func TestDashboardMethodGuards(t *testing.T) {
	_, srv := dashboardFixture(t)
	resp, err := http.Post(srv.URL+"/summary", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
}

func TestDashboardHealthz(t *testing.T) {
	_, srv := dashboardFixture(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}
