package monitor

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"blackboxval/internal/errorgen"
	"blackboxval/internal/obs"
)

func dashboardFixture(t *testing.T) (*Monitor, *httptest.Server) {
	t.Helper()
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, Validator: f.val, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	m.Observe(f.serving)
	m.Observe(errorgen.Scaling{}.Corrupt(f.serving, 0.95, rng))
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, srv
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestDashboardSummary(t *testing.T) {
	_, srv := dashboardFixture(t)
	var s Summary
	if code := getJSON(t, srv.URL+"/summary", &s); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if s.Batches != 2 || s.Violations < 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestDashboardHistoryWithLimit(t *testing.T) {
	_, srv := dashboardFixture(t)
	var all []Record
	if code := getJSON(t, srv.URL+"/history", &all); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(all) != 2 {
		t.Fatalf("history = %d records", len(all))
	}
	var last []Record
	if code := getJSON(t, srv.URL+"/history?limit=1", &last); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(last) != 1 || last[0].Seq != all[1].Seq {
		t.Fatalf("limited history = %+v", last)
	}
	var bad []Record
	if code := getJSON(t, srv.URL+"/history?limit=-2", &bad); code != http.StatusBadRequest {
		t.Fatalf("negative limit status = %d", code)
	}
}

func TestDashboardAlarming(t *testing.T) {
	m, srv := dashboardFixture(t)
	var out map[string]any
	if code := getJSON(t, srv.URL+"/alarming", &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out["alarming"] != m.Alarming() {
		t.Fatalf("alarming = %v, monitor says %v", out["alarming"], m.Alarming())
	}
	if out["alarm_line"].(float64) != m.AlarmLine() {
		t.Fatal("alarm line mismatch")
	}
}

func TestDashboardMethodGuards(t *testing.T) {
	_, srv := dashboardFixture(t)
	for _, path := range []string{"/summary", "/history", "/alarming"} {
		resp, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s status = %d, want 405", path, resp.StatusCode)
		}
		req, err := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("DELETE %s status = %d, want 405", path, resp.StatusCode)
		}
	}
}

func TestDashboardHistoryLimitEdgeCases(t *testing.T) {
	_, srv := dashboardFixture(t)
	// Non-numeric limit.
	var out []Record
	if code := getJSON(t, srv.URL+"/history?limit=abc", &out); code != http.StatusBadRequest {
		t.Fatalf("limit=abc status = %d, want 400", code)
	}
	// Zero limit is valid and yields an empty slice.
	out = nil
	if code := getJSON(t, srv.URL+"/history?limit=0", &out); code != http.StatusOK {
		t.Fatalf("limit=0 status = %d", code)
	}
	if len(out) != 0 {
		t.Fatalf("limit=0 returned %d records", len(out))
	}
	// A limit beyond the history returns everything.
	out = nil
	if code := getJSON(t, srv.URL+"/history?limit=9999", &out); code != http.StatusOK {
		t.Fatalf("limit=9999 status = %d", code)
	}
	if len(out) != 2 {
		t.Fatalf("oversized limit returned %d records, want 2", len(out))
	}
}

func TestDashboardEmptyHistory(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	var s Summary
	if code := getJSON(t, srv.URL+"/summary", &s); code != http.StatusOK {
		t.Fatalf("summary status = %d", code)
	}
	if s.Batches != 0 || s.MeanEstimate != 0 || s.LastEstimate != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	var hist []Record
	if code := getJSON(t, srv.URL+"/history", &hist); code != http.StatusOK {
		t.Fatalf("history status = %d", code)
	}
	if len(hist) != 0 {
		t.Fatalf("empty monitor served %d records", len(hist))
	}
	var alarming map[string]any
	if code := getJSON(t, srv.URL+"/alarming", &alarming); code != http.StatusOK {
		t.Fatalf("alarming status = %d", code)
	}
	if alarming["alarming"] != false {
		t.Fatalf("fresh monitor alarming = %v", alarming["alarming"])
	}
}

// TestConcurrentObserveRowAndHandlerReads hammers the row-streaming
// write path against every dashboard read path under the race detector:
// the async serving tap (gateway) and scrapers share one monitor.
func TestConcurrentObserveRowAndHandlerReads(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, Threshold: 0.05, WindowSize: 50, HistoryLimit: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	proba := f.model.PredictProba(f.serving)
	const writers, readers, rowsPerWriter = 4, 4, 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rowsPerWriter; i++ {
				m.ObserveRow(proba.Row((w*rowsPerWriter + i) % proba.Rows))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, path := range []string{"/summary", "/history?limit=5", "/alarming", "/healthz"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	// writers*rowsPerWriter rows at window 50 must have produced exactly
	// total/50 full windows, regardless of interleaving.
	s := m.Summarize()
	wantBatches := writers * rowsPerWriter / 50
	if wantBatches > 16 {
		wantBatches = 16 // history bound
	}
	if s.Batches != wantBatches {
		t.Fatalf("batches = %d, want %d", s.Batches, wantBatches)
	}
}

// TestLimitValidationContract pins the shared ?limit= contract across
// GET /timeline and GET /debug/spans: absent means everything,
// non-numeric or negative input is a 400 (never a silent default), and
// a valid limit clips to the most recent entries.
func TestLimitValidationContract(t *testing.T) {
	_, monSrv := dashboardFixture(t)
	tr := obs.NewTracer(8)
	for i := 0; i < 3; i++ {
		_, sp := obs.StartSpan(obs.WithTracer(context.Background(), tr), "op")
		sp.End()
	}
	spanSrv := httptest.NewServer(tr.Handler())
	t.Cleanup(spanSrv.Close)

	endpoints := []struct {
		name  string
		url   string
		count func(t *testing.T, body []byte) int
		total int
	}{
		{"timeline", monSrv.URL + "/timeline", func(t *testing.T, body []byte) int {
			var doc TimelineDoc
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatal(err)
			}
			return len(doc.Windows)
		}, 2},
		{"debug/spans", spanSrv.URL + "/debug/spans", func(t *testing.T, body []byte) int {
			var spans []json.RawMessage
			if err := json.Unmarshal(body, &spans); err != nil {
				t.Fatal(err)
			}
			return len(spans)
		}, 3},
	}
	for _, ep := range endpoints {
		for _, bad := range []string{"?limit=abc", "?limit=-1", "?limit=1.5", "?limit=%20"} {
			resp, err := http.Get(ep.url + bad)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s%s status = %d, want 400", ep.name, bad, resp.StatusCode)
			}
		}
		for limit, want := range map[string]int{"": ep.total, "?limit=1": 1, "?limit=0": 0, "?limit=9999": ep.total} {
			resp, err := http.Get(ep.url + limit)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s%s status = %d", ep.name, limit, resp.StatusCode)
			}
			if got := ep.count(t, body); got != want {
				t.Errorf("%s%s returned %d entries, want %d", ep.name, limit, got, want)
			}
		}
	}
}

func TestDashboardHealthz(t *testing.T) {
	_, srv := dashboardFixture(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}
