package monitor

import (
	"blackboxval/internal/obs"
)

// RegisterMetrics registers the monitor's metric families on reg
// (typically obs.Default()) and wires them to this monitor:
//
//	ppm_monitor_estimate          gauge   latest score estimate
//	ppm_monitor_alarm             gauge   1 while the monitor is alarming
//	ppm_monitor_alarm_line        gauge   score below which a batch violates
//	ppm_monitor_batches_total     counter observed batches/windows
//	ppm_monitor_violations_total  counter violating batches
//	ppm_monitor_alarms_total      counter batches observed in alarm state
//
// The gauges are callback-backed, so every scrape reads the live
// state; the counters are incremented inside commit. All of it is safe
// to scrape concurrently with Observe/ObserveRow — the registry never
// holds a family lock while calling back into the monitor, and the
// monitor never calls the registry while holding its own mutex in a
// way that could re-enter. Calling RegisterMetrics twice (or for two
// monitors on one registry) panics via the registry's get-or-create
// conflict check only if the families were registered with different
// metadata; the second monitor otherwise takes over the callbacks.
func (m *Monitor) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("ppm_monitor_estimate",
		"Latest score estimate recorded by the performance monitor.",
		func() float64 { return m.Summarize().LastEstimate })
	reg.GaugeFunc("ppm_monitor_alarm",
		"1 while the performance monitor is alarming, else 0.",
		func() float64 {
			if m.Alarming() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("ppm_monitor_alarm_line",
		"Score estimate below which a batch counts as violating ((1-t) * test score).",
		func() float64 { return m.AlarmLine() })

	batches := reg.Counter("ppm_monitor_batches_total",
		"Serving batches (or filled streaming windows) observed by the monitor.")
	violations := reg.Counter("ppm_monitor_violations_total",
		"Observed batches whose combined verdict was a violation.")
	alarms := reg.Counter("ppm_monitor_alarms_total",
		"Observed batches recorded while the monitor was in the alarm state.")

	m.mu.Lock()
	m.batchesMetric = batches
	m.violationsMetric = violations
	m.alarmsMetric = alarms
	m.mu.Unlock()
}
