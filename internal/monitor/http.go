package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler exposes the monitor's state over HTTP for dashboards and
// scrapers:
//
//	GET /                  -> HTML drift dashboard (auto-refreshing)
//	GET /summary           -> Summary as JSON
//	GET /history?limit=N   -> the most recent N records (default all retained)
//	GET /alarming          -> {"alarming": bool, "alarm_line": x}
//	GET /timeline?limit=N  -> TimelineDoc clipped to the most recent N windows
//	GET /healthz           -> 200 ok
//
// Every ?limit= shares one validation contract with /debug/spans:
// non-numeric or negative input is a 400, never a silent default.
//
// Mount it next to the prediction service so the validation state ships
// with the model.
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", m.handleDashboard)
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		doc := m.TimelineDoc()
		limit, ok := parseLimit(w, r, len(doc.Windows))
		if !ok {
			return
		}
		if limit < len(doc.Windows) {
			doc.Windows = doc.Windows[len(doc.Windows)-limit:]
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/summary", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, m.Summarize())
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		history := m.History()
		limit, ok := parseLimit(w, r, len(history))
		if !ok {
			return
		}
		if limit < len(history) {
			history = history[len(history)-limit:]
		}
		writeJSON(w, history)
	})
	mux.HandleFunc("/alarming", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, map[string]any{
			"alarming":   m.Alarming(),
			"alarm_line": m.AlarmLine(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		setMonitorHeaders(w, "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// parseLimit reads ?limit= with the validation contract every limit
// parameter in this repository shares (/history, /timeline,
// /debug/spans): absent means def, non-numeric or negative writes a
// 400 and reports ok=false.
func parseLimit(w http.ResponseWriter, r *http.Request, def int) (int, bool) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return def, true
	}
	limit, err := strconv.Atoi(raw)
	if err != nil || limit < 0 {
		http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
		return 0, false
	}
	return limit, true
}

// setMonitorHeaders applies the shared response hygiene of every
// monitor endpoint: an explicit Content-Type and Cache-Control:
// no-store, because all of them report live model state that a cache
// (or a browser's back button) must never serve stale.
func setMonitorHeaders(w http.ResponseWriter, contentType string) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Cache-Control", "no-store")
}

func writeJSON(w http.ResponseWriter, v any) {
	setMonitorHeaders(w, "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
