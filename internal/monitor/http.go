package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler exposes the monitor's state over HTTP for dashboards and
// scrapers:
//
//	GET /                 -> HTML drift dashboard (auto-refreshing)
//	GET /summary          -> Summary as JSON
//	GET /history?limit=N  -> the most recent N records (default all retained)
//	GET /alarming         -> {"alarming": bool, "alarm_line": x}
//	GET /timeline         -> TimelineDoc: the windowed drift timeline as JSON
//	GET /healthz          -> 200 ok
//
// Mount it next to the prediction service so the validation state ships
// with the model.
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", m.handleDashboard)
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, m.TimelineDoc())
	})
	mux.HandleFunc("/summary", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, m.Summarize())
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		history := m.History()
		if limitStr := r.URL.Query().Get("limit"); limitStr != "" {
			limit, err := strconv.Atoi(limitStr)
			if err != nil || limit < 0 {
				http.Error(w, "invalid limit", http.StatusBadRequest)
				return
			}
			if limit < len(history) {
				history = history[len(history)-limit:]
			}
		}
		writeJSON(w, history)
	})
	mux.HandleFunc("/alarming", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, map[string]any{
			"alarming":   m.Alarming(),
			"alarm_line": m.AlarmLine(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		setMonitorHeaders(w, "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// setMonitorHeaders applies the shared response hygiene of every
// monitor endpoint: an explicit Content-Type and Cache-Control:
// no-store, because all of them report live model state that a cache
// (or a browser's back button) must never serve stale.
func setMonitorHeaders(w http.ResponseWriter, contentType string) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Cache-Control", "no-store")
}

func writeJSON(w http.ResponseWriter, v any) {
	setMonitorHeaders(w, "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
