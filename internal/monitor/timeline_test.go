package monitor

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"blackboxval/internal/data"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/linalg"
	"blackboxval/internal/obs"
)

func TestTimelineFeedAndDriftStats(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cleanRec := m.Observe(f.serving)
	if cleanRec.KS == nil || cleanRec.P50Shift == nil {
		t.Fatal("drift stats missing on a batch observation")
	}
	classes := f.pred.TestOutputs().Cols
	if len(cleanRec.KS) != classes || len(cleanRec.P50Shift) != classes {
		t.Fatalf("drift stats have %d/%d entries, want %d classes",
			len(cleanRec.KS), len(cleanRec.P50Shift), classes)
	}

	rng := rand.New(rand.NewSource(7))
	broken := errorgen.Scaling{}.Corrupt(f.serving, 0.95, rng)
	brokenRec := m.Observe(broken)
	if brokenRec.KSMax <= cleanRec.KSMax {
		t.Fatalf("corruption should raise KSMax: clean %v broken %v",
			cleanRec.KSMax, brokenRec.KSMax)
	}

	windows := m.Timeline().Windows()
	if len(windows) != 2 {
		t.Fatalf("timeline windows = %d, want 2", len(windows))
	}
	last := windows[1]
	for _, series := range []string{"estimate", "alarm", "violation", "batch_size", "ks_max"} {
		if _, ok := last.Series[series]; !ok {
			t.Fatalf("timeline window missing series %q (have %v)", series, last.Series)
		}
	}
	if got := last.Series["estimate"].Last; got != brokenRec.Estimate {
		t.Fatalf("timeline estimate = %v, want %v", got, brokenRec.Estimate)
	}
	if got := last.Series["ks_max"].Last; got != brokenRec.KSMax {
		t.Fatalf("timeline ks_max = %v, want %v", got, brokenRec.KSMax)
	}
	if _, ok := last.Series["ks_class_0"]; !ok {
		t.Fatal("per-class KS series missing")
	}
	if _, ok := last.Series["p50_shift_class_0"]; !ok {
		t.Fatal("per-class p50 shift series missing")
	}
}

func TestTimelineWindowAggregation(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, TimelineWindow: 2, TimelineCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	proba := f.model.PredictProba(f.serving)
	for i := 0; i < 4; i++ {
		m.ObserveProba(proba)
	}
	windows := m.Timeline().Windows()
	if len(windows) != 2 {
		t.Fatalf("4 batches at 2/window -> %d windows, want 2", len(windows))
	}
	if windows[0].Batches != 2 || windows[0].Series["estimate"].Count != 2 {
		t.Fatalf("window aggregation = %+v", windows[0])
	}
}

func TestObserveProbaIDCarriesRequestID(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred})
	if err != nil {
		t.Fatal(err)
	}
	proba := f.model.PredictProba(f.serving)
	rec := m.ObserveProbaID(proba, "gw-00000042")
	if rec.RequestID != "gw-00000042" {
		t.Fatalf("record request id = %q", rec.RequestID)
	}
	hist := m.History()
	if hist[len(hist)-1].RequestID != "gw-00000042" {
		t.Fatal("request id not retained in history")
	}
	// Plain ObserveProba leaves the id empty and omits it from JSON.
	m.ObserveProba(proba)
	buf, err := json.Marshal(m.History())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"RequestID":"gw-00000042"`) {
		t.Fatalf("history JSON missing request id: %s", buf)
	}
	if strings.Count(string(buf), "RequestID") != 1 {
		t.Fatalf("empty request ids should be omitted: %s", buf)
	}
}

func TestObserveRowFeedsTimelineWithoutDriftStats(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, WindowSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	proba := f.model.PredictProba(f.serving)
	for i := 0; i < 100; i++ {
		m.ObserveRow(proba.Row(i))
	}
	windows := m.Timeline().Windows()
	if len(windows) != 1 {
		t.Fatalf("timeline windows = %d, want 1", len(windows))
	}
	if _, ok := windows[0].Series["estimate"]; !ok {
		t.Fatal("streamed window missing estimate")
	}
	// Row streaming keeps no output sample, so no KS series appear.
	if _, ok := windows[0].Series["ks_max"]; ok {
		t.Fatal("streamed window should not carry KS stats")
	}
}

func TestTimelineEndpointAndDashboard(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, DashboardRefresh: 1234 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(f.serving)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/timeline status = %d", resp.StatusCode)
	}
	var doc TimelineDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.RefreshMillis != 1234 {
		t.Fatalf("refresh_ms = %d, want 1234 (flag-configured)", doc.RefreshMillis)
	}
	if doc.AlarmLine != m.AlarmLine() || doc.WindowBatches != 1 || doc.Capacity != 128 {
		t.Fatalf("doc = %+v", doc)
	}
	if len(doc.Windows) != 1 || doc.Windows[0].Series["estimate"].Count != 1 {
		t.Fatalf("windows = %+v", doc.Windows)
	}

	page, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, page)
	if page.StatusCode != http.StatusOK || !strings.Contains(page.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("dashboard status = %d content-type = %q", page.StatusCode, page.Header.Get("Content-Type"))
	}
	// The page polls the timeline endpoint by relative URL, so it works
	// both standalone and under the gateway's /monitor/ prefix.
	if !strings.Contains(body, `fetch("timeline")`) {
		t.Fatal("dashboard does not poll /timeline")
	}
	if !strings.Contains(body, "refresh_ms") {
		t.Fatal("dashboard ignores the server-configured refresh interval")
	}

	if resp, _ := http.Get(srv.URL + "/definitely-not-here"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestOnObserveOrdering pins the observer contract the incident flight
// recorder depends on: by the time a BatchObserver runs, the record is
// committed to history (so a capture sees consistent state), and the
// batch has NOT yet fed the timeline — so an OnWindowClose alert hook
// that triggers a capture always finds the triggering batch already in
// the observer's reservoir.
func TestOnObserveOrdering(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred})
	if err != nil {
		t.Fatal(err)
	}
	proba := f.model.PredictProba(f.serving)

	var observed, closed int
	m.Timeline().OnWindowClose(func(obs.Window) {
		if observed != closed+1 {
			t.Errorf("window %d closed before its batch observer ran (observed=%d)", closed, observed)
		}
		closed++
	})
	m.OnObserve(func(batch *data.Dataset, p *linalg.Matrix, rec Record) {
		observed++
		if batch != f.serving || p != proba {
			t.Error("observer did not receive the observed batch and outputs")
		}
		if rec.RequestID != "req-7" {
			t.Errorf("observer record request id = %q", rec.RequestID)
		}
		hist := m.History()
		if len(hist) == 0 || hist[len(hist)-1].Seq != rec.Seq {
			t.Error("observer ran before the record was committed to history")
		}
		if got := m.Timeline().Len(); got != closed {
			t.Errorf("timeline advanced to %d windows before observers ran", got)
		}
	})

	m.ObserveBatchProbaID(f.serving, proba, "req-7")
	m.ObserveBatchProbaID(f.serving, proba, "req-7")
	if observed != 2 || closed != 2 {
		t.Fatalf("observed=%d closed=%d, want 2/2", observed, closed)
	}
}

// TestTimelineWraparoundRacingScrape wraps the timeline ring several
// times over while a scraper hammers /timeline and an OnWindowClose
// hook (standing in for the alert engine) observes every close. Run
// under -race this pins the snapshot isolation of closed windows.
func TestTimelineWraparoundRacingScrape(t *testing.T) {
	f := getFixture(t)
	const capacity, batches = 4, 32
	m, err := New(Config{Predictor: f.pred, TimelineCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	proba := f.model.PredictProba(f.serving)

	var closes atomic.Int64
	m.Timeline().OnWindowClose(func(obs.Window) { closes.Add(1) })

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < batches; i++ {
			m.ObserveProba(proba)
		}
	}()
	for {
		resp, err := http.Get(srv.URL + "/timeline")
		if err != nil {
			t.Fatal(err)
		}
		var doc TimelineDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(doc.Windows) > capacity {
			t.Fatalf("ring exceeded capacity: %d windows", len(doc.Windows))
		}
		// Every scrape, mid-wraparound or not, sees a gapless suffix of
		// the window stream.
		for j := 1; j < len(doc.Windows); j++ {
			if doc.Windows[j].Index != doc.Windows[j-1].Index+1 {
				t.Fatalf("window indices not contiguous: %d after %d",
					doc.Windows[j].Index, doc.Windows[j-1].Index)
			}
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}

	if got := closes.Load(); got != batches {
		t.Fatalf("OnWindowClose fired %d times, want %d", got, batches)
	}
	windows := m.Timeline().Windows()
	if len(windows) != capacity {
		t.Fatalf("retained %d windows, want capacity %d", len(windows), capacity)
	}
	if last := windows[len(windows)-1].Index; last != batches-1 {
		t.Fatalf("newest window index = %d, want %d", last, batches-1)
	}
}

// TestMonitorResponseHeaderHygiene asserts every monitor endpoint
// declares its media type and opts out of caching — monitoring state
// is live data; a cached /summary hides an outage.
func TestMonitorResponseHeaderHygiene(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(f.serving)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	cases := []struct{ path, ctPrefix string }{
		{"/", "text/html"},
		{"/timeline", "application/json"},
		{"/summary", "application/json"},
		{"/history", "application/json"},
		{"/alarming", "application/json"},
		{"/healthz", "text/plain"},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", c.path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, c.ctPrefix) {
			t.Errorf("%s Content-Type = %q, want prefix %q", c.path, ct, c.ctPrefix)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", c.path, cc)
		}
	}
}
