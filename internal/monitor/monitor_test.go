package monitor

import (
	"math/rand"
	"sync"
	"testing"

	"blackboxval/internal/core"
	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/models"
)

// setup trains a small black box and predictor shared by the tests.
type fixture struct {
	model   data.Model
	pred    *core.Predictor
	val     *core.Validator
	serving *data.Dataset
}

var (
	fixOnce sync.Once
	fix     fixture
)

func getFixture(t *testing.T) fixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := rand.New(rand.NewSource(1))
		ds := datagen.Income(3000, 1).Balance(rng)
		source, serving := ds.Split(0.7, rng)
		train, test := source.Split(0.6, rng)
		model, err := models.TrainPipeline(train, &models.GBDTClassifier{Trees: 20, Seed: 1}, 64)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := core.TrainPredictor(model, test, core.PredictorConfig{
			Generators:  errorgen.KnownTabular(),
			Repetitions: 40,
			ForestSizes: []int{30},
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		val, err := core.TrainValidator(model, test, core.ValidatorConfig{
			Generators: errorgen.KnownTabular(),
			Threshold:  0.05,
			Batches:    80,
			Seed:       1,
		})
		if err != nil {
			t.Fatal(err)
		}
		fix = fixture{model: model, pred: pred, val: val, serving: serving}
	})
	return fix
}

func TestNewValidation(t *testing.T) {
	f := getFixture(t)
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing predictor should error")
	}
	if _, err := New(Config{Predictor: f.pred, Threshold: 1.5}); err == nil {
		t.Fatal("bad threshold should error")
	}
	if _, err := New(Config{Predictor: f.pred, Hysteresis: -1}); err == nil {
		t.Fatal("negative hysteresis should error")
	}
}

func TestCleanBatchesDoNotAlarm(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, Threshold: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rec := m.Observe(f.serving)
		if rec.Alarming {
			t.Fatalf("batch %d: clean data alarmed (estimate %v, line %v)", i, rec.Estimate, m.AlarmLine())
		}
	}
	if m.Alarming() {
		t.Fatal("monitor in alarm state after clean batches")
	}
}

func TestCatastrophicCorruptionAlarms(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, Validator: f.val, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	broken := errorgen.Scaling{}.Corrupt(f.serving, 0.95, rng)
	rec := m.Observe(broken)
	if !rec.Violating {
		t.Fatalf("catastrophic corruption not violating: estimate %v line %v", rec.Estimate, m.AlarmLine())
	}
	if !m.Alarming() {
		t.Fatal("monitor should be alarming")
	}
}

func TestHysteresisSuppressesSingleFluke(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, Threshold: 0.05, Hysteresis: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	broken := errorgen.Scaling{}.Corrupt(f.serving, 0.95, rng)

	// One violating batch: no alarm yet.
	rec := m.Observe(broken)
	if rec.Alarming || m.Alarming() {
		t.Fatal("alarm fired before hysteresis count")
	}
	// A clean batch resets the run.
	m.Observe(f.serving)
	m.Observe(broken)
	m.Observe(broken)
	if m.Alarming() {
		t.Fatal("run should have been reset by the clean batch")
	}
	// Third consecutive violation fires.
	rec = m.Observe(broken)
	if !rec.Alarming || !m.Alarming() {
		t.Fatal("alarm should fire after 3 consecutive violations")
	}
}

func TestHistoryBoundedAndOrdered(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, HistoryLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	proba := f.model.PredictProba(f.serving)
	for i := 0; i < 10; i++ {
		m.ObserveProba(proba)
	}
	hist := m.History()
	if len(hist) != 4 {
		t.Fatalf("history length = %d, want 4", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Seq != hist[i-1].Seq+1 {
			t.Fatalf("history not contiguous: %v", hist)
		}
	}
	if hist[3].Seq != 9 {
		t.Fatalf("latest record seq = %d, want 9", hist[3].Seq)
	}
}

func TestSummarize(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Summarize(); s.Batches != 0 {
		t.Fatal("empty monitor should summarize to zero")
	}
	rng := rand.New(rand.NewSource(4))
	m.Observe(f.serving)
	m.Observe(errorgen.Scaling{}.Corrupt(f.serving, 0.95, rng))
	s := m.Summarize()
	if s.Batches != 2 {
		t.Fatalf("batches = %d", s.Batches)
	}
	if s.MinEstimate > s.MeanEstimate {
		t.Fatal("min > mean")
	}
	if s.Violations < 1 {
		t.Fatal("catastrophic batch not counted as violation")
	}
	if s.LastEstimate != m.History()[1].Estimate {
		t.Fatal("last estimate mismatch")
	}
}

func TestObserveRowWindowing(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, Threshold: 0.1, WindowSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	proba := f.model.PredictProba(f.serving)
	emitted := 0
	for i := 0; i < proba.Rows && i < 450; i++ {
		rec, done := m.ObserveRow(proba.Row(i))
		if done {
			emitted++
			if rec.Size != 200 {
				t.Fatalf("window record size = %d, want 200", rec.Size)
			}
			if rec.Alarming {
				t.Fatalf("clean stream window alarmed: estimate %v line %v", rec.Estimate, m.AlarmLine())
			}
		}
	}
	if emitted != 2 {
		t.Fatalf("emitted %d windows from 450 rows at window size 200", emitted)
	}
	if got := len(m.History()); got != 2 {
		t.Fatalf("history = %d records", got)
	}
}

func TestObserveRowDetectsCorruptedStream(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred, Threshold: 0.05, WindowSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	broken := errorgen.Scaling{}.Corrupt(f.serving, 0.95, rng)
	proba := f.model.PredictProba(broken)
	var last Record
	got := false
	for i := 0; i < proba.Rows && i < 300; i++ {
		if rec, done := m.ObserveRow(proba.Row(i)); done {
			last = rec
			got = true
		}
	}
	if !got {
		t.Fatal("no window emitted")
	}
	if !last.Violating {
		t.Fatalf("catastrophic stream window not violating: estimate %v line %v", last.Estimate, m.AlarmLine())
	}
}

func TestConcurrentObserve(t *testing.T) {
	f := getFixture(t)
	m, err := New(Config{Predictor: f.pred})
	if err != nil {
		t.Fatal(err)
	}
	proba := f.model.PredictProba(f.serving)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				m.ObserveProba(proba)
			}
		}()
	}
	wg.Wait()
	if got := len(m.History()); got != 160 {
		t.Fatalf("history length = %d, want 160", got)
	}
	seen := map[int]bool{}
	for _, rec := range m.History() {
		if seen[rec.Seq] {
			t.Fatal("duplicate sequence number under concurrency")
		}
		seen[rec.Seq] = true
	}
}
