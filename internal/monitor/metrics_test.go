package monitor

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"blackboxval/internal/obs"
)

// TestRegisterMetricsConformance checks the monitor's families render a
// conformant exposition ("Conformance" keeps it in the Makefile lint run).
func TestRegisterMetricsConformance(t *testing.T) {
	f := getFixture(t)
	reg := obs.NewRegistry()
	m, err := New(Config{Predictor: f.pred, Validator: f.val})
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterMetrics(reg)

	proba := f.model.PredictProba(f.serving)
	for i := 0; i < 3; i++ {
		m.ObserveProba(proba)
	}

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("content type = %q, want %q", got, obs.ContentType)
	}
	body := rec.Body.String()
	if errs := obs.Lint(body); len(errs) > 0 {
		t.Fatalf("monitor exposition not conformant:\n%v\n%s", errs, body)
	}
	for _, want := range []string{
		"ppm_monitor_batches_total 3",
		"ppm_monitor_violations_total 0",
		"ppm_monitor_alarms_total 0",
		"ppm_monitor_alarm 0",
		"ppm_monitor_alarm_line ",
		"ppm_monitor_estimate ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestMetricsScrapeConcurrentWithObserveRow drives the row-streaming
// path while the metrics endpoint and the JSON dashboard are scraped
// concurrently — the serving deployment's steady state, checked under
// the race detector by the Makefile race gate.
func TestMetricsScrapeConcurrentWithObserveRow(t *testing.T) {
	f := getFixture(t)
	reg := obs.NewRegistry()
	m, err := New(Config{Predictor: f.pred, WindowSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterMetrics(reg)

	proba := f.model.PredictProba(f.serving)
	metrics := reg.Handler()
	dashboard := m.Handler()

	var writeWG, readWG sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < 300; i++ {
				m.ObserveRow(proba.Row((w*300 + i) % proba.Rows))
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rec := httptest.NewRecorder()
				metrics.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				if errs := obs.Lint(rec.Body.String()); len(errs) > 0 {
					t.Errorf("mid-stream exposition not conformant: %v", errs[0])
					return
				}
				for _, path := range []string{"/summary", "/history?limit=5", "/alarming"} {
					rec := httptest.NewRecorder()
					dashboard.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
					if rec.Code != 200 {
						t.Errorf("GET %s = %d", path, rec.Code)
						return
					}
				}
			}
		}()
	}
	writeWG.Wait()
	close(done)
	readWG.Wait()

	// 4 writers x 300 rows at window size 50 = 24 full windows.
	rec := httptest.NewRecorder()
	metrics.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "ppm_monitor_batches_total 24") {
		t.Fatalf("batch counter mismatch:\n%s", rec.Body.String())
	}
}
