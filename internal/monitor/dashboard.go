package monitor

// The HTML drift dashboard served at the monitor's root: a static page
// whose inline script polls GET /timeline and redraws an estimate
// sparkline against the alarm line, the KS drift trace, the labeled-
// accuracy credible band (when the label-feedback store feeds the
// timeline) and a recent-window table. The refresh cadence is
// configured server-side (Config.DashboardRefresh) and delivered to
// the page inside the timeline document, so operators tune it with a
// flag, not by editing JavaScript.

import (
	"fmt"
	"net/http"

	"blackboxval/internal/obs"
)

// TimelineDoc is the JSON document served at GET /timeline.
type TimelineDoc struct {
	// AlarmLine is the score below which a batch violates.
	AlarmLine float64 `json:"alarm_line"`
	// WindowBatches is how many batches aggregate into one window.
	WindowBatches int `json:"window_batches"`
	// Capacity is the ring bound on retained windows.
	Capacity int `json:"capacity"`
	// RefreshMillis is the dashboard's poll interval (0 = no auto-refresh).
	RefreshMillis int `json:"refresh_ms"`
	// Alarming is the monitor's live alarm state.
	Alarming bool `json:"alarming"`
	// Windows are the retained closed windows, oldest first.
	Windows []obs.Window `json:"windows"`
}

// TimelineDoc snapshots the drift timeline for the JSON endpoint.
func (m *Monitor) TimelineDoc() TimelineDoc {
	return TimelineDoc{
		AlarmLine:     m.AlarmLine(),
		WindowBatches: m.timeline.WindowBatches(),
		Capacity:      m.timeline.Capacity(),
		RefreshMillis: int(m.DashboardRefresh().Milliseconds()),
		Alarming:      m.Alarming(),
		Windows:       m.timeline.Windows(),
	}
}

func (m *Monitor) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	setMonitorHeaders(w, "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}

// dashboardHTML is deliberately dependency-free: no template engine, no
// asset pipeline, one fetch target. The page reads every dynamic value —
// including its own refresh interval — from /timeline.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ppm drift timeline</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }
  h1 { font-size: 1.2rem; }
  .status { margin: .5rem 0 1rem; }
  .badge { padding: .15rem .5rem; border-radius: .25rem; color: #fff; }
  .ok { background: #2a7d2a; }
  .alarm { background: #b02a2a; }
  .stale { background: #b07a2a; }
  svg { border: 1px solid #ddd; background: #fafafa; }
  table { border-collapse: collapse; margin-top: 1rem; }
  th, td { border: 1px solid #ccc; padding: .25rem .6rem; text-align: right; }
  th { background: #f0f0f0; }
  td.alarming { background: #f6d5d5; }
  .meta { color: #666; font-size: .85rem; }
  button { font: inherit; padding: .1rem .5rem; }
</style>
</head>
<body>
<h1>Performance-predictor drift timeline</h1>
<div class="status">
  state: <span id="state" class="badge ok">loading…</span>
  <span id="gaps" class="badge stale" style="display:none"></span>
  <span class="meta" id="meta"></span>
  <span class="meta"><a href="/debug/incidents/view">incidents</a></span>
</div>
<svg id="chart" width="720" height="160" viewBox="0 0 720 160"></svg>
<table>
  <thead><tr><th>window</th><th>batches</th><th>estimate</th><th>labeled acc [95% CI]</th><th>ks_max</th><th>alarm</th></tr></thead>
  <tbody id="rows"></tbody>
</table>
<div id="slo" style="display:none">
<h2 style="font-size:1rem">Serving latency</h2>
<div class="meta" id="slometa"></div>
<table>
  <thead><tr><th>stage</th><th>count</th><th>p50</th><th>p99</th><th>p999</th><th>max</th></tr></thead>
  <tbody id="slorows"></tbody>
</table>
<div class="meta" id="sloex"></div>
</div>
<div id="hist" style="display:none">
<h2 style="font-size:1rem">Durable history</h2>
<div class="meta">
  <button id="older">&laquo; older</button>
  <button id="newer">newer &raquo;</button>
  <span id="histmeta"></span>
</div>
<svg id="histchart" width="720" height="160" viewBox="0 0 720 160"></svg>
</div>
<script>
"use strict";
// line breaks its path wherever a point is flagged as following a gap,
// so a sparkline never draws a connecting stroke across missing
// windows.
function line(points, color) {
  if (!points.length) return "";
  var d = points.map(function (p, i) { return (i && !p.gap ? "L" : "M") + p.x.toFixed(1) + " " + p.y.toFixed(1); }).join(" ");
  return '<path d="' + d + '" fill="none" stroke="' + color + '" stroke-width="1.5"/>';
}
function seriesMean(w, name) {
  var a = w.series && w.series[name];
  return a && a.count ? a.sum / a.count : null;
}
function seriesLast(w, name) {
  var a = w.series && w.series[name];
  return a && a.count ? a.last : null;
}
function band(los, his, color) {
  if (los.length < 2) return "";
  var pts = los.concat(his.slice().reverse());
  var d = pts.map(function (p, i) { return (i ? "L" : "M") + p.x.toFixed(1) + " " + p.y.toFixed(1); }).join(" ") + " Z";
  return '<path d="' + d + '" fill="' + color + '" fill-opacity="0.25" stroke="none"/>';
}
// drawDrift renders a gap-aware drift chart into an svg element. The x
// axis is proportional to window INDEX, not array position, so
// non-contiguous windows (ring evictions, a restarted producer, a
// compacted bucket followed by raw windows) leave visible holes:
// shaded gap rects, broken series lines. spans may be null (live ring,
// every window spans one index) or the /timeline/range spans array.
// Returns the number of missing window indices.
function drawDrift(el, windows, spans, alarmLine) {
  var W = 720, H = 160, pad = 8;
  var alarmY = H - pad - Math.max(0, Math.min(1, alarmLine)) * (H - 2 * pad);
  if (!windows.length) {
    el.innerHTML = '<line x1="0" x2="' + W + '" y1="' + alarmY + '" y2="' + alarmY + '" stroke="#b02a2a" stroke-dasharray="4 3"/>';
    return 0;
  }
  var spanOf = function (i) { return spans && spans[i] > 1 ? spans[i] : 1; };
  var first = windows[0].index;
  var last = windows[windows.length - 1].index + spanOf(windows.length - 1) - 1;
  var range = Math.max(1, last - first);
  var xs = function (idx) { return last === first ? W / 2 : pad + (idx - first) * (W - 2 * pad) / range; };
  var ys = function (v) { return H - pad - Math.max(0, Math.min(1, v)) * (H - 2 * pad); };
  var est = [], ks = [], lab = [], lablo = [], labhi = [];
  var gapRects = "", missing = 0, prevEnd = null;
  windows.forEach(function (w, i) {
    var gap = prevEnd !== null && w.index > prevEnd + 1;
    if (gap) {
      missing += w.index - prevEnd - 1;
      gapRects += '<rect x="' + xs(prevEnd).toFixed(1) + '" y="0" width="' +
        (xs(w.index) - xs(prevEnd)).toFixed(1) + '" height="' + H + '" fill="#b07a2a" fill-opacity="0.15"/>';
    }
    var x = xs(w.index + (spanOf(i) - 1) / 2); // bucket midpoint
    var e = seriesMean(w, "estimate"); if (e !== null) est.push({x: x, y: ys(e), gap: gap});
    var k = seriesMean(w, "ks_max"); if (k !== null) ks.push({x: x, y: ys(k), gap: gap});
    // The labeled-accuracy posterior: last value per window is the most
    // recent Beta interval the label joins produced there.
    var m = seriesLast(w, "labeled_acc_mean"), lo = seriesLast(w, "labeled_acc_lo95"), hi = seriesLast(w, "labeled_acc_hi95");
    if (m !== null && lo !== null && hi !== null) {
      lab.push({x: x, y: ys(m), gap: gap});
      lablo.push({x: x, y: ys(lo)});
      labhi.push({x: x, y: ys(hi)});
    }
    prevEnd = w.index + spanOf(i) - 1;
  });
  el.innerHTML =
    gapRects +
    '<line x1="0" x2="' + W + '" y1="' + alarmY + '" y2="' + alarmY + '" stroke="#b02a2a" stroke-dasharray="4 3"/>' +
    band(lablo, labhi, "#2a7d2a") + line(lab, "#2a7d2a") +
    line(est, "#2255aa") + line(ks, "#cc8800");
  return missing;
}
var lastAlarmLine = 0;
function render(doc) {
  var windows = doc.windows || [];
  lastAlarmLine = doc.alarm_line;
  var state = document.getElementById("state");
  state.textContent = doc.alarming ? "ALARM" : "ok";
  state.className = "badge " + (doc.alarming ? "alarm" : "ok");
  document.getElementById("meta").textContent =
    windows.length + " windows · " + doc.window_batches + " batch(es)/window · alarm line " +
    doc.alarm_line.toFixed(4) + (doc.refresh_ms > 0 ? " · refresh " + doc.refresh_ms + "ms" : "");

  var missing = drawDrift(document.getElementById("chart"), windows, null, doc.alarm_line);
  var gapBadge = document.getElementById("gaps");
  if (missing > 0) {
    gapBadge.style.display = "";
    gapBadge.textContent = "STALE · " + missing + " missing window" + (missing > 1 ? "s" : "");
  } else {
    gapBadge.style.display = "none";
  }

  var rows = windows.slice(-12).reverse().map(function (w) {
    var e = seriesMean(w, "estimate"), k = seriesMean(w, "ks_max"), a = seriesMean(w, "alarm");
    var m = seriesLast(w, "labeled_acc_mean"), lo = seriesLast(w, "labeled_acc_lo95"), hi = seriesLast(w, "labeled_acc_hi95");
    var labCell = (m === null || lo === null || hi === null) ? "–" :
      m.toFixed(3) + " [" + lo.toFixed(3) + ", " + hi.toFixed(3) + "]";
    return "<tr><td>" + w.index + "</td><td>" + w.batches + "</td><td>" +
      (e === null ? "–" : e.toFixed(4)) + "</td><td>" + labCell + "</td><td>" + (k === null ? "–" : k.toFixed(4)) +
      '</td><td class="' + (a ? "alarming" : "") + '">' + (a ? "yes" : "no") + "</td></tr>";
  });
  document.getElementById("rows").innerHTML = rows.join("");
}
function ms(v) { return (v * 1000).toFixed(2) + "ms"; }
// The serving SLO panel reads the gateway's root /slo (absolute: this
// dashboard is usually mounted under /monitor/). A standalone monitor
// has no /slo — the panel stays hidden there.
function renderSLO(doc) {
  var box = document.getElementById("slo");
  if (!doc) { box.style.display = "none"; return; }
  box.style.display = "";
  document.getElementById("slometa").textContent =
    doc.requests + " requests · " + doc.over_budget + " over a " + ms(doc.budget_seconds) +
    " budget · burn fast " + doc.burn_fast.toFixed(2) + " / slow " + doc.burn_slow.toFixed(2);
  document.getElementById("slorows").innerHTML = (doc.stages || []).map(function (s) {
    return "<tr><td>" + s.stage + "</td><td>" + s.count + "</td><td>" +
      ms(s.p50) + "</td><td>" + ms(s.p99) + "</td><td>" + ms(s.p999) + "</td><td>" + ms(s.max) + "</td></tr>";
  }).join("");
  document.getElementById("sloex").textContent = (doc.exemplars || []).length
    ? "slowest: " + doc.exemplars.map(function (e) { return e.id + " (" + ms(e.v) + ")"; }).join(", ")
    : "";
}
function poll() {
  Promise.all([
    fetch("timeline").then(function (r) { return r.json(); }),
    fetch("/slo").then(function (r) { return r.ok ? r.json() : null; }).catch(function () { return null; })
  ]).then(function (res) {
    render(res[0]);
    renderSLO(res[1]);
    if (res[0].refresh_ms > 0) setTimeout(poll, res[0].refresh_ms);
  }).catch(function () { setTimeout(poll, 5000); });
}
poll();
// Durable history: pages through the on-disk window store at the
// relative timeline/range endpoint (same page works standalone and
// behind the gateway's /monitor/ mount). The panel only appears when
// the producer ran with -tsdb-dir — the probe fetch 404s otherwise.
var histState = { page: 96, from: 0, to: 0, min: 0, max: 0 };
function renderHist(doc) {
  histState.min = doc.min_index; histState.max = doc.max_index;
  histState.from = doc.from; histState.to = doc.to;
  var missing = drawDrift(document.getElementById("histchart"), doc.windows || [], doc.spans || null, lastAlarmLine);
  document.getElementById("histmeta").textContent =
    "windows " + doc.from + "–" + doc.to + " of " + doc.min_index + "–" + doc.max_index +
    " · " + (doc.windows || []).length + " persisted" +
    (missing > 0 ? " · " + missing + " missing" : "");
  document.getElementById("older").disabled = doc.from <= doc.min_index;
  document.getElementById("newer").disabled = doc.to >= doc.max_index;
}
function loadHist(from, to) {
  fetch("timeline/range?from=" + from + "&to=" + to)
    .then(function (r) { if (!r.ok) throw 0; return r.json(); })
    .then(renderHist).catch(function () {});
}
function histPage(to) {
  loadHist(Math.max(histState.min, to - histState.page + 1), to);
}
function initHist() {
  fetch("timeline/range?from=0&to=0")
    .then(function (r) { if (!r.ok) throw 0; return r.json(); })
    .then(function (doc) {
      document.getElementById("hist").style.display = "";
      document.getElementById("older").onclick = function () {
        histPage(Math.max(histState.min + histState.page - 1, histState.from - 1));
      };
      document.getElementById("newer").onclick = function () {
        histPage(Math.min(histState.max, histState.to + histState.page));
      };
      histPage(doc.max_index);
    }).catch(function () {});
}
initHist();
</script>
</body>
</html>
`
