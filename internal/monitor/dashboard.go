package monitor

// The HTML drift dashboard served at the monitor's root: a static page
// whose inline script polls GET /timeline and redraws an estimate
// sparkline against the alarm line, the KS drift trace, the labeled-
// accuracy credible band (when the label-feedback store feeds the
// timeline) and a recent-window table. The refresh cadence is
// configured server-side (Config.DashboardRefresh) and delivered to
// the page inside the timeline document, so operators tune it with a
// flag, not by editing JavaScript.

import (
	"fmt"
	"net/http"

	"blackboxval/internal/obs"
)

// TimelineDoc is the JSON document served at GET /timeline.
type TimelineDoc struct {
	// AlarmLine is the score below which a batch violates.
	AlarmLine float64 `json:"alarm_line"`
	// WindowBatches is how many batches aggregate into one window.
	WindowBatches int `json:"window_batches"`
	// Capacity is the ring bound on retained windows.
	Capacity int `json:"capacity"`
	// RefreshMillis is the dashboard's poll interval (0 = no auto-refresh).
	RefreshMillis int `json:"refresh_ms"`
	// Alarming is the monitor's live alarm state.
	Alarming bool `json:"alarming"`
	// Windows are the retained closed windows, oldest first.
	Windows []obs.Window `json:"windows"`
}

// TimelineDoc snapshots the drift timeline for the JSON endpoint.
func (m *Monitor) TimelineDoc() TimelineDoc {
	return TimelineDoc{
		AlarmLine:     m.AlarmLine(),
		WindowBatches: m.timeline.WindowBatches(),
		Capacity:      m.timeline.Capacity(),
		RefreshMillis: int(m.DashboardRefresh().Milliseconds()),
		Alarming:      m.Alarming(),
		Windows:       m.timeline.Windows(),
	}
}

func (m *Monitor) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	setMonitorHeaders(w, "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}

// dashboardHTML is deliberately dependency-free: no template engine, no
// asset pipeline, one fetch target. The page reads every dynamic value —
// including its own refresh interval — from /timeline.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ppm drift timeline</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }
  h1 { font-size: 1.2rem; }
  .status { margin: .5rem 0 1rem; }
  .badge { padding: .15rem .5rem; border-radius: .25rem; color: #fff; }
  .ok { background: #2a7d2a; }
  .alarm { background: #b02a2a; }
  svg { border: 1px solid #ddd; background: #fafafa; }
  table { border-collapse: collapse; margin-top: 1rem; }
  th, td { border: 1px solid #ccc; padding: .25rem .6rem; text-align: right; }
  th { background: #f0f0f0; }
  td.alarming { background: #f6d5d5; }
  .meta { color: #666; font-size: .85rem; }
</style>
</head>
<body>
<h1>Performance-predictor drift timeline</h1>
<div class="status">
  state: <span id="state" class="badge ok">loading…</span>
  <span class="meta" id="meta"></span>
  <span class="meta"><a href="/debug/incidents/view">incidents</a></span>
</div>
<svg id="chart" width="720" height="160" viewBox="0 0 720 160"></svg>
<table>
  <thead><tr><th>window</th><th>batches</th><th>estimate</th><th>labeled acc [95% CI]</th><th>ks_max</th><th>alarm</th></tr></thead>
  <tbody id="rows"></tbody>
</table>
<div id="slo" style="display:none">
<h2 style="font-size:1rem">Serving latency</h2>
<div class="meta" id="slometa"></div>
<table>
  <thead><tr><th>stage</th><th>count</th><th>p50</th><th>p99</th><th>p999</th><th>max</th></tr></thead>
  <tbody id="slorows"></tbody>
</table>
<div class="meta" id="sloex"></div>
</div>
<script>
"use strict";
function line(points, color) {
  if (!points.length) return "";
  var d = points.map(function (p, i) { return (i ? "L" : "M") + p[0].toFixed(1) + " " + p[1].toFixed(1); }).join(" ");
  return '<path d="' + d + '" fill="none" stroke="' + color + '" stroke-width="1.5"/>';
}
function seriesMean(w, name) {
  var a = w.series && w.series[name];
  return a && a.count ? a.sum / a.count : null;
}
function seriesLast(w, name) {
  var a = w.series && w.series[name];
  return a && a.count ? a.last : null;
}
function band(los, his, color) {
  if (los.length < 2) return "";
  var pts = los.concat(his.slice().reverse());
  var d = pts.map(function (p, i) { return (i ? "L" : "M") + p[0].toFixed(1) + " " + p[1].toFixed(1); }).join(" ") + " Z";
  return '<path d="' + d + '" fill="' + color + '" fill-opacity="0.25" stroke="none"/>';
}
function render(doc) {
  var windows = doc.windows || [];
  var state = document.getElementById("state");
  state.textContent = doc.alarming ? "ALARM" : "ok";
  state.className = "badge " + (doc.alarming ? "alarm" : "ok");
  document.getElementById("meta").textContent =
    windows.length + " windows · " + doc.window_batches + " batch(es)/window · alarm line " +
    doc.alarm_line.toFixed(4) + (doc.refresh_ms > 0 ? " · refresh " + doc.refresh_ms + "ms" : "");

  var W = 720, H = 160, pad = 8;
  var xs = function (i) { return windows.length < 2 ? W / 2 : pad + i * (W - 2 * pad) / (windows.length - 1); };
  var ys = function (v) { return H - pad - v * (H - 2 * pad); }; // scores live in [0,1]
  var est = [], ks = [], lab = [], lablo = [], labhi = [];
  windows.forEach(function (w, i) {
    var e = seriesMean(w, "estimate"); if (e !== null) est.push([xs(i), ys(Math.max(0, Math.min(1, e)))]);
    var k = seriesMean(w, "ks_max"); if (k !== null) ks.push([xs(i), ys(Math.max(0, Math.min(1, k)))]);
    // The labeled-accuracy posterior: last value per window is the most
    // recent Beta interval the label joins produced there.
    var m = seriesLast(w, "labeled_acc_mean"), lo = seriesLast(w, "labeled_acc_lo95"), hi = seriesLast(w, "labeled_acc_hi95");
    if (m !== null && lo !== null && hi !== null) {
      lab.push([xs(i), ys(Math.max(0, Math.min(1, m)))]);
      lablo.push([xs(i), ys(Math.max(0, Math.min(1, lo)))]);
      labhi.push([xs(i), ys(Math.max(0, Math.min(1, hi)))]);
    }
  });
  var alarmY = ys(Math.max(0, Math.min(1, doc.alarm_line)));
  document.getElementById("chart").innerHTML =
    '<line x1="0" x2="' + W + '" y1="' + alarmY + '" y2="' + alarmY + '" stroke="#b02a2a" stroke-dasharray="4 3"/>' +
    band(lablo, labhi, "#2a7d2a") + line(lab, "#2a7d2a") +
    line(est, "#2255aa") + line(ks, "#cc8800");

  var rows = windows.slice(-12).reverse().map(function (w) {
    var e = seriesMean(w, "estimate"), k = seriesMean(w, "ks_max"), a = seriesMean(w, "alarm");
    var m = seriesLast(w, "labeled_acc_mean"), lo = seriesLast(w, "labeled_acc_lo95"), hi = seriesLast(w, "labeled_acc_hi95");
    var labCell = (m === null || lo === null || hi === null) ? "–" :
      m.toFixed(3) + " [" + lo.toFixed(3) + ", " + hi.toFixed(3) + "]";
    return "<tr><td>" + w.index + "</td><td>" + w.batches + "</td><td>" +
      (e === null ? "–" : e.toFixed(4)) + "</td><td>" + labCell + "</td><td>" + (k === null ? "–" : k.toFixed(4)) +
      '</td><td class="' + (a ? "alarming" : "") + '">' + (a ? "yes" : "no") + "</td></tr>";
  });
  document.getElementById("rows").innerHTML = rows.join("");
}
function ms(v) { return (v * 1000).toFixed(2) + "ms"; }
// The serving SLO panel reads the gateway's root /slo (absolute: this
// dashboard is usually mounted under /monitor/). A standalone monitor
// has no /slo — the panel stays hidden there.
function renderSLO(doc) {
  var box = document.getElementById("slo");
  if (!doc) { box.style.display = "none"; return; }
  box.style.display = "";
  document.getElementById("slometa").textContent =
    doc.requests + " requests · " + doc.over_budget + " over a " + ms(doc.budget_seconds) +
    " budget · burn fast " + doc.burn_fast.toFixed(2) + " / slow " + doc.burn_slow.toFixed(2);
  document.getElementById("slorows").innerHTML = (doc.stages || []).map(function (s) {
    return "<tr><td>" + s.stage + "</td><td>" + s.count + "</td><td>" +
      ms(s.p50) + "</td><td>" + ms(s.p99) + "</td><td>" + ms(s.p999) + "</td><td>" + ms(s.max) + "</td></tr>";
  }).join("");
  document.getElementById("sloex").textContent = (doc.exemplars || []).length
    ? "slowest: " + doc.exemplars.map(function (e) { return e.id + " (" + ms(e.v) + ")"; }).join(", ")
    : "";
}
function poll() {
  Promise.all([
    fetch("timeline").then(function (r) { return r.json(); }),
    fetch("/slo").then(function (r) { return r.ok ? r.json() : null; }).catch(function () { return null; })
  ]).then(function (res) {
    render(res[0]);
    renderSLO(res[1]);
    if (res[0].refresh_ms > 0) setTimeout(poll, res[0].refresh_ms);
  }).catch(function () { setTimeout(poll, 5000); });
}
poll();
</script>
</body>
</html>
`
