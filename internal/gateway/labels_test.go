package gateway

// End-to-end label-feedback flow through the serving proxy: a client
// posts a batch, keeps the X-Request-ID the gateway pinned on the
// response, and later POSTs the true labels for those rows back to
// /labels — the store joins them against what the shadow tap observed
// under that id and reports the Bayesian assessment on /labels/status.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"blackboxval/internal/cloud"
	"blackboxval/internal/labels"
	"blackboxval/internal/obs"
)

func TestLabelFeedbackJoinThroughGateway(t *testing.T) {
	f := getFixture(t)
	mon := newMonitor(t, f)
	store, err := labels.New(labels.Config{Timeline: mon.Timeline()})
	if err != nil {
		t.Fatal(err)
	}
	mon.OnObserve(store.ObserveBatch)
	g, gwSrv := newGateway(t, Config{Monitor: mon, Labels: store}, cloud.NewServer(f.model).Handler())

	resp, respBody := post(t, gwSrv.URL, encodeBatch(t, f.serving))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy status %d", resp.StatusCode)
	}
	id := resp.Header.Get(obs.RequestIDHeader)
	if id == "" {
		t.Fatal("no X-Request-ID on the serving response")
	}
	proba, _, err := cloud.ParseProbaResponse(respBody)
	if err != nil {
		t.Fatal(err)
	}
	waitObserved(t, g, 1)
	// The shadow tap hands batches to observers asynchronously; wait for
	// the join state to know the id before posting labels.
	deadline := time.Now().Add(5 * time.Second)
	for store.Snapshot().PendingBatches == 0 {
		if time.Now().After(deadline) {
			t.Fatal("label store never saw the shadow-observed batch")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Label every row with the model's own argmax so the joined accuracy
	// is exactly 1 — a fixed point that pins the join, not the model.
	labelVals := make([]int, proba.Rows)
	for i := 0; i < proba.Rows; i++ {
		best := 0
		for j := 1; j < proba.Cols; j++ {
			if proba.At(i, j) > proba.At(i, best) {
				best = j
			}
		}
		labelVals[i] = best
	}
	payload, _ := json.Marshal(labelVals)
	body := fmt.Sprintf(`{"records":[{"request_id":%q,"labels":%s}]}`, id, payload)
	lresp, err := http.Post(gwSrv.URL+"/labels", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("/labels status %d", lresp.StatusCode)
	}
	var res labels.IngestResult
	if err := json.NewDecoder(lresp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.JoinedRows != int64(proba.Rows) {
		t.Fatalf("joined %d rows, want %d (%+v)", res.JoinedRows, proba.Rows, res)
	}

	st, err := http.Get(gwSrv.URL + "/labels/status")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var snap labels.Snapshot
	if err := json.NewDecoder(st.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.RowsLabeled != int64(proba.Rows) || snap.RowsCorrect != snap.RowsLabeled {
		t.Fatalf("status snapshot %+v, want all %d rows labeled correct", snap, proba.Rows)
	}
	if snap.Overall.Mean <= 0.9 {
		t.Fatalf("posterior mean %v after an all-correct join", snap.Overall.Mean)
	}
}
