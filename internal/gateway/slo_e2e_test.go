package gateway

// The serving SLO acceptance scenario: latency over budget drives the
// burn-rate series past threshold, the critical multi-window rule
// fires exactly once, the firing edge captures an incident bundle that
// embeds CPU+heap pprof profiles plus the SLO snapshot, and the
// bundle's slowest-request exemplars carry X-Request-IDs resolvable
// through the monitor's /history endpoint. Everything is deterministic:
// windows are counted in requests, the budget is 1ns so every request
// is over, and the rule breaches from the very first window.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"blackboxval/internal/cloud"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
	"blackboxval/internal/obs/incident"
)

func TestBurnRateAlertCapturesProfiledIncident(t *testing.T) {
	f := getFixture(t)
	mon, err := monitor.New(monitor.Config{Predictor: f.pred, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	g, gwSrv := newGateway(t, Config{
		Monitor: mon,
		Logger:  log.New(io.Discard, "", 0),
		SLO: SLOConfig{
			Budget: time.Nanosecond, Target: 0.9,
			WindowRequests: 4, FastRequests: 8, SlowRequests: 16,
		},
	}, cloud.NewServer(f.model).Handler())

	// The incident recorder with alert-triggered profiling: a short CPU
	// window keeps the test fast, the cooldown collapses the two rules'
	// firing edges into one capture.
	profiler := obs.NewProfiler(obs.ProfilerConfig{CPUDuration: 50 * time.Millisecond})
	rec, err := incident.New(incident.Config{
		Monitor:  mon,
		Profiler: profiler,
		Serving:  g.IncidentServing,
		Registry: obs.NewRegistry(),
		Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}

	sink := &eventSink{}
	engine, err := alert.New(alert.Config{
		Rules:    BurnRateRules(1.0),
		Notifier: alert.Notifiers(rec.AlertNotifier(), sink),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.SLOTimeline().OnWindowClose(engine.Evaluate)

	// 24 requests with pinned ids: 6 SLO windows of 4, all over the 1ns
	// budget, so serving_burn = 1/(1−0.9) = 10 from the first window on.
	body := encodeBatch(t, f.serving)
	for i := 0; i < 24; i++ {
		req, _ := http.NewRequest(http.MethodPost, gwSrv.URL+"/predict_proba", bytes.NewReader(body))
		req.Header.Set(obs.RequestIDHeader, fmt.Sprintf("e2e-slo-%03d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status = %d", i, resp.StatusCode)
		}
	}
	waitObserved(t, g, 24)

	// The critical rule fired exactly once across six breaching windows —
	// hysteresis, no flapping — at the very first window close.
	events := sink.events()
	firing := map[string]int{}
	for _, ev := range events {
		if ev.State == "firing" {
			firing[ev.Rule]++
		}
	}
	if firing["serving_burn_rate"] != 1 {
		t.Fatalf("serving_burn_rate fired %d times (events %+v), want exactly 1",
			firing["serving_burn_rate"], events)
	}
	if firing["serving_burn_fast"] != 1 {
		t.Fatalf("serving_burn_fast fired %d times, want exactly 1", firing["serving_burn_fast"])
	}
	for _, ev := range events {
		if ev.State == "firing" && ev.Rule == "serving_burn_rate" {
			if ev.WindowIndex != 0 || ev.Value < 9.99 || ev.Value > 10.01 {
				t.Fatalf("firing event = %+v, want window 0 at burn ~10", ev)
			}
		}
	}

	// Exactly one bundle: the cooldown collapsed the second rule's edge.
	bundles := rec.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("bundles = %d, want exactly 1", len(bundles))
	}
	b := bundles[0]
	if !strings.HasPrefix(b.Reason, "alert:serving_burn") {
		t.Fatalf("bundle reason = %q, want an alert:serving_burn* trigger", b.Reason)
	}

	// The bundle embeds genuine pprof profiles...
	if b.Profiles == nil {
		t.Fatal("bundle has no profiles")
	}
	if len(b.Profiles.CPU) == 0 || len(b.Profiles.Heap) == 0 {
		t.Fatalf("profiles: cpu %d bytes, heap %d bytes — want both non-empty",
			len(b.Profiles.CPU), len(b.Profiles.Heap))
	}
	// ...(gzip magic: pprof protos are gzipped)...
	for _, prof := range [][]byte{b.Profiles.CPU, b.Profiles.Heap} {
		if len(prof) < 2 || prof[0] != 0x1f || prof[1] != 0x8b {
			t.Fatalf("profile does not look like a gzipped pprof proto: % x", prof[:2])
		}
	}

	// ...and the SLO snapshot with exemplar request ids.
	if b.Serving == nil {
		t.Fatal("bundle has no serving SLO snapshot")
	}
	if b.Serving.OverBudget == 0 || b.Serving.BurnFast < 1 {
		t.Fatalf("serving snapshot = %+v, want over-budget burn state", b.Serving)
	}
	if len(b.Serving.Exemplars) == 0 {
		t.Fatal("serving snapshot has no exemplars")
	}

	// Every exemplar X-Request-ID resolves through the monitor's
	// /history endpoint (mounted under the gateway at /monitor/history).
	histResp, err := http.Get(gwSrv.URL + "/monitor/history")
	if err != nil {
		t.Fatal(err)
	}
	defer histResp.Body.Close()
	var history []monitor.Record
	if err := json.NewDecoder(histResp.Body).Decode(&history); err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, rec := range history {
		known[rec.RequestID] = true
	}
	for _, ex := range b.Serving.Exemplars {
		if ex.RequestID == "" {
			t.Fatalf("exemplar without request id: %+v", ex)
		}
		if !known[ex.RequestID] {
			t.Fatalf("exemplar id %q not resolvable in /history (known: %v)", ex.RequestID, known)
		}
	}

	// The markdown report surfaces the profile and exemplar sections for
	// ppm-diagnose.
	md := b.Markdown()
	for _, want := range []string{"## Profiles", "## Serving SLO", b.Serving.Exemplars[0].RequestID} {
		if !strings.Contains(md, want) {
			t.Fatalf("bundle markdown missing %q:\n%s", want, md)
		}
	}

	// A second immediate capture attempt is refused by the profiler
	// cooldown but still yields a bundle (profiles are best-effort).
	b2, err := rec.Capture("manual-after")
	if err != nil {
		t.Fatal(err)
	}
	if b2.Profiles != nil {
		t.Fatal("second capture inside the profiler cooldown still embedded profiles")
	}
}

// eventSink collects alert events in order.
type eventSink struct {
	mu  sync.Mutex
	evs []alert.Event
}

func (s *eventSink) Notify(ev alert.Event) {
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	s.mu.Unlock()
}

func (s *eventSink) events() []alert.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]alert.Event(nil), s.evs...)
}
