package gateway

// slo.go: the serving SLO observatory (DESIGN.md §15). Every proxied
// request is timed per stage — decode (body read), relay (backend
// round trip incl. retries), shadow_enqueue (tap handoff) and, off the
// hot path, monitor_observe (the shadow worker's monitor call) — into
// deterministic mergeable latency histograms (stats.LatencyHist) whose
// exemplars carry X-Request-IDs, so a slow p999 bucket links straight
// to /history and incident bundles. The same observations feed:
//
//   - Prometheus families (ppm_serving_*) on the gateway registry;
//   - a per-request SLO timeline (obs.TimeSeries) carrying the
//     burn-rate series the stock alert engine evaluates;
//   - the /slo JSON document;
//   - the /federate Serving section (per-stage histograms the
//     aggregator merges into bit-exact fleet quantiles).
//
// Burn rate follows the SRE multi-window recipe, made deterministic by
// defining windows in request counts instead of wall time: the fast
// window covers the last FastRequests requests, the slow window the
// last SlowRequests. Each window's burn is
//
//	burn = overBudgetFraction / (1 − Target)
//
// (burn 1.0 = consuming the error budget exactly as fast as the SLO
// allows). The combined series serving_burn = min(fast, slow) exceeds
// a threshold iff BOTH windows do — the SRE "fast AND slow" page
// condition expressed as a single timeline series, so the stock
// threshold-for-duration rule engine needs no AND combinator.

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
	"blackboxval/internal/obs/incident"
	"blackboxval/internal/stats"
)

// Serving-stage names, used as histogram keys, metric label values and
// federation document keys.
const (
	StageRequest        = "request"
	StageDecode         = "decode"
	StageRelay          = "relay"
	StageShadowEnqueue  = "shadow_enqueue"
	StageMonitorObserve = "monitor_observe"
)

// sloStageOrder fixes the rendering order of stage tables.
var sloStageOrder = []string{StageRequest, StageDecode, StageRelay, StageShadowEnqueue, StageMonitorObserve}

// SLO timeline series names.
const (
	SeriesServingLatency = "serving_latency"
	SeriesServingOver    = "serving_over"
	SeriesBurnFast       = "serving_burn_fast"
	SeriesBurnSlow       = "serving_burn_slow"
	SeriesBurn           = "serving_burn"
)

// SLOConfig tunes the serving SLO observatory. The zero value enables
// it with production defaults; it cannot be disabled (the cost is a
// few histogram increments per request).
type SLOConfig struct {
	// Budget is the per-request latency budget (default 250ms). A
	// request slower than this consumes error budget.
	Budget time.Duration
	// Target is the SLO target fraction of in-budget requests (default
	// 0.99, i.e. an error budget of 1%).
	Target float64
	// WindowRequests is the number of requests aggregated into one SLO
	// timeline window (default 64). Alert rules see one evaluation per
	// window.
	WindowRequests int
	// FastRequests is the fast burn-rate window in requests (default
	// 128) — the deterministic analogue of the SRE 5-minute window.
	FastRequests int
	// SlowRequests is the slow burn-rate window in requests (default
	// 1024) — the analogue of the 1-hour window.
	SlowRequests int
	// ExemplarSlots bounds the exemplars kept per histogram bucket
	// (default stats.DefaultExemplarSlots).
	ExemplarSlots int
	// TimelineCapacity bounds the retained SLO windows (default 128).
	TimelineCapacity int
}

func (c *SLOConfig) defaults() {
	if c.Budget <= 0 {
		c.Budget = 250 * time.Millisecond
	}
	if c.Target <= 0 || c.Target >= 1 {
		c.Target = 0.99
	}
	if c.WindowRequests <= 0 {
		c.WindowRequests = 64
	}
	if c.FastRequests <= 0 {
		c.FastRequests = 128
	}
	if c.SlowRequests <= 0 {
		c.SlowRequests = 1024
	}
	if c.ExemplarSlots <= 0 {
		c.ExemplarSlots = stats.DefaultExemplarSlots
	}
	if c.TimelineCapacity <= 0 {
		c.TimelineCapacity = 128
	}
}

// burnRing is a fixed-size ring of over-budget bits: the rolling
// request-count window behind one burn-rate series.
type burnRing struct {
	bits   []bool
	next   int
	filled int
	over   int
}

func newBurnRing(n int) *burnRing { return &burnRing{bits: make([]bool, n)} }

// push records one request's over-budget bit, evicting the oldest once
// the ring is full.
func (r *burnRing) push(over bool) {
	if r.filled == len(r.bits) {
		if r.bits[r.next] {
			r.over--
		}
	} else {
		r.filled++
	}
	r.bits[r.next] = over
	if over {
		r.over++
	}
	r.next = (r.next + 1) % len(r.bits)
}

// fraction returns the over-budget fraction of the requests currently
// in the window (0 while empty).
func (r *burnRing) fraction() float64 {
	if r.filled == 0 {
		return 0
	}
	return float64(r.over) / float64(r.filled)
}

// sloTracker owns the serving SLO state. Stage observation is
// synchronous under one mutex (a map lookup plus O(log slots)
// histogram work); the timeline commit — and therefore any alert
// engine hooks — runs after the mutex is released.
type sloTracker struct {
	cfg      SLOConfig
	timeline *obs.TimeSeries

	inflight atomic.Int64

	mu     sync.Mutex
	stages map[string]*stats.LatencyHist
	fast   *burnRing
	slow   *burnRing
	total  int64
	over   int64
	// alloc-per-request sampling state (window-close cadence).
	lastTotalAlloc uint64
	lastTotalReqs  int64
	allocPerReq    float64

	// Prometheus families (registered on the gateway registry).
	stageSeconds *obs.HistogramVec
	overTotal    *obs.Counter
	burnGauge    *obs.GaugeVec
	allocGauge   *obs.Gauge
}

func newSLOTracker(cfg SLOConfig, reg *obs.Registry) *sloTracker {
	cfg.defaults()
	timeline, err := obs.NewTimeSeries(obs.TimeSeriesConfig{
		Capacity:      cfg.TimelineCapacity,
		WindowBatches: cfg.WindowRequests,
	})
	if err != nil {
		// Only reachable through invalid quantile config, which we never set.
		panic(err)
	}
	t := &sloTracker{
		cfg:      cfg,
		timeline: timeline,
		stages:   map[string]*stats.LatencyHist{},
		fast:     newBurnRing(cfg.FastRequests),
		slow:     newBurnRing(cfg.SlowRequests),
		stageSeconds: reg.HistogramVec("ppm_serving_stage_duration_seconds",
			"Serving hot-path stage latency by stage (request, decode, relay, shadow_enqueue, monitor_observe).",
			latencyBuckets, "stage"),
		overTotal: reg.Counter("ppm_serving_over_budget_total",
			"Requests slower than the SLO latency budget."),
		burnGauge: reg.GaugeVec("ppm_serving_burn_rate",
			"Error-budget burn rate over the rolling request window (1.0 = consuming budget exactly at the SLO rate).", "window"),
		allocGauge: reg.Gauge("ppm_serving_alloc_bytes_per_req",
			"Heap bytes allocated per proxied request, sampled at SLO window close (process-wide TotalAlloc delta / request delta)."),
	}
	reg.GaugeFunc("ppm_serving_inflight",
		"Proxied requests currently in flight.", func() float64 { return float64(t.inflight.Load()) })
	t.burnGauge.Set(0, "fast")
	t.burnGauge.Set(0, "slow")
	return t
}

// hist returns (allocating if needed) the named stage histogram.
// Callers hold t.mu.
func (t *sloTracker) histLocked(stage string) *stats.LatencyHist {
	h := t.stages[stage]
	if h == nil {
		h = stats.NewLatencyHist(t.cfg.ExemplarSlots)
		t.stages[stage] = h
	}
	return h
}

// observeStage records one sub-request stage duration. Safe from any
// goroutine (the shadow worker calls it for monitor_observe).
func (t *sloTracker) observeStage(stage string, seconds float64, requestID string) {
	t.stageSeconds.Observe(seconds, stage)
	t.mu.Lock()
	t.histLocked(stage).ObserveID(seconds, requestID)
	t.mu.Unlock()
}

// observeRequest records one finished proxied request: the request
// stage histogram, the burn-rate rings, and one committed batch on the
// SLO timeline. Alert hooks fire on this goroutine once the tracker's
// own lock is released.
func (t *sloTracker) observeRequest(seconds float64, requestID string) {
	t.stageSeconds.Observe(seconds, StageRequest)
	over := seconds > t.cfg.Budget.Seconds()
	errBudget := 1 - t.cfg.Target

	t.mu.Lock()
	t.histLocked(StageRequest).ObserveID(seconds, requestID)
	t.total++
	if over {
		t.over++
	}
	t.fast.push(over)
	t.slow.push(over)
	burnFast := t.fast.fraction() / errBudget
	burnSlow := t.slow.fraction() / errBudget
	windowEdge := t.total%int64(t.cfg.WindowRequests) == 0
	if windowEdge {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if dReq := t.total - t.lastTotalReqs; dReq > 0 && t.lastTotalAlloc > 0 {
			t.allocPerReq = float64(ms.TotalAlloc-t.lastTotalAlloc) / float64(dReq)
		}
		t.lastTotalAlloc = ms.TotalAlloc
		t.lastTotalReqs = t.total
	}
	allocPerReq := t.allocPerReq
	t.mu.Unlock()

	if over {
		t.overTotal.Inc()
	}
	t.burnGauge.Set(burnFast, "fast")
	t.burnGauge.Set(burnSlow, "slow")
	if windowEdge {
		t.allocGauge.Set(allocPerReq)
	}

	t.timeline.Record(SeriesServingLatency, seconds)
	t.timeline.Record(SeriesServingOver, boolGauge(over))
	t.timeline.Record(SeriesBurnFast, burnFast)
	t.timeline.Record(SeriesBurnSlow, burnSlow)
	t.timeline.Record(SeriesBurn, min(burnFast, burnSlow))
	t.timeline.Commit()
}

// snapshot clones the per-stage histograms and scalar counters under
// the lock.
func (t *sloTracker) snapshot() (map[string]*stats.LatencyHist, int64, int64, float64, float64, float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	hists := make(map[string]*stats.LatencyHist, len(t.stages))
	for name, h := range t.stages {
		hists[name] = h.Clone()
	}
	errBudget := 1 - t.cfg.Target
	return hists, t.total, t.over, t.fast.fraction() / errBudget, t.slow.fraction() / errBudget, t.allocPerReq
}

// SLOStage is one stage's latency quantiles in the /slo document.
type SLOStage struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// SLODoc is the JSON document served at /slo.
type SLODoc struct {
	BudgetSeconds    float64          `json:"budget_seconds"`
	Target           float64          `json:"target"`
	Requests         int64            `json:"requests"`
	OverBudget       int64            `json:"over_budget"`
	BurnFast         float64          `json:"burn_fast"`
	BurnSlow         float64          `json:"burn_slow"`
	Inflight         int64            `json:"inflight"`
	AllocBytesPerReq float64          `json:"alloc_bytes_per_req"`
	Stages           []SLOStage       `json:"stages"`
	Exemplars        []stats.Exemplar `json:"exemplars,omitempty"`
}

// stageDocs renders stage histograms as quantile rows in canonical
// order (known stages first, any others alphabetically).
func stageDocs(hists map[string]*stats.LatencyHist) []SLOStage {
	seen := map[string]bool{}
	names := make([]string, 0, len(hists))
	for _, name := range sloStageOrder {
		if hists[name] != nil {
			names = append(names, name)
			seen[name] = true
		}
	}
	rest := make([]string, 0)
	for name := range hists {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	names = append(names, rest...)

	out := make([]SLOStage, 0, len(names))
	for _, name := range names {
		h := hists[name]
		out = append(out, SLOStage{
			Stage: name,
			Count: int64(h.Count()),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
			Max:   h.Max(),
			Mean:  h.Mean(),
		})
	}
	return out
}

// doc assembles the /slo document.
func (t *sloTracker) doc(exemplars int) SLODoc {
	hists, total, over, burnFast, burnSlow, allocPerReq := t.snapshot()
	doc := SLODoc{
		BudgetSeconds:    t.cfg.Budget.Seconds(),
		Target:           t.cfg.Target,
		Requests:         total,
		OverBudget:       over,
		BurnFast:         burnFast,
		BurnSlow:         burnSlow,
		Inflight:         t.inflight.Load(),
		AllocBytesPerReq: allocPerReq,
		Stages:           stageDocs(hists),
	}
	if h := hists[StageRequest]; h != nil {
		doc.Exemplars = h.TopExemplars(exemplars)
	}
	return doc
}

// IncidentServing snapshots the SLO observatory in the incident
// recorder's bundle shape (wire as incident.Config.Serving, or via
// cli.IncidentOptions.Serving). A bundle captured by a firing
// burn-rate rule then carries the stage quantiles and the slowest
// request exemplars alongside the pprof profiles.
func (g *Gateway) IncidentServing() *incident.ServingSLO {
	doc := g.slo.doc(5)
	out := &incident.ServingSLO{
		BudgetSeconds: doc.BudgetSeconds,
		Target:        doc.Target,
		Requests:      doc.Requests,
		OverBudget:    doc.OverBudget,
		BurnFast:      doc.BurnFast,
		BurnSlow:      doc.BurnSlow,
		Exemplars:     doc.Exemplars,
	}
	for _, s := range doc.Stages {
		out.Stages = append(out.Stages, incident.ServingStage{
			Stage: s.Stage, Count: s.Count,
			P50: s.P50, P99: s.P99, P999: s.P999, Max: s.Max,
		})
	}
	return out
}

// BurnRateRules returns the multi-window burn-rate alert rules for the
// SLO timeline: a critical page on serving_burn (= min(fast, slow) —
// above threshold only when BOTH windows burn) and an early warning on
// the fast window alone. threshold <= 0 defaults to 1.0 (budget
// consumed exactly at the SLO rate).
func BurnRateRules(threshold float64) []alert.Rule {
	if threshold <= 0 {
		threshold = 1.0
	}
	return []alert.Rule{
		{
			Name: "serving_burn_rate", Series: SeriesBurn,
			Op: ">", Threshold: threshold, Reduce: "last",
			ForWindows: 1, ClearWindows: 2, Severity: "critical",
		},
		{
			Name: "serving_burn_fast", Series: SeriesBurnFast,
			Op: ">", Threshold: threshold, Reduce: "last",
			ForWindows: 1, ClearWindows: 2, Severity: "warning",
		},
	}
}
