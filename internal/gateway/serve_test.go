package gateway

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestListenAndServeCtxShutsDownCleanly(t *testing.T) {
	// Reserve a free port, release it, and serve there.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- listenAndServeCtx(ctx, addr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		}), time.Second)
	}()

	// Wait for the server to come up, then hit it once.
	url := "http://" + addr + "/"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain within the deadline")
	}
}

func TestListenAndServeCtxSurfacesListenerError(t *testing.T) {
	err := listenAndServeCtx(context.Background(), "256.0.0.1:bogus", http.NotFoundHandler(), time.Second)
	if err == nil {
		t.Fatal("invalid address should surface a listener error")
	}
}
