package gateway

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	"blackboxval/internal/obs"
)

// parsePrometheus validates the exposition format line by line and
// returns the samples keyed by "name{label="v",...}". It fails the test
// on any malformed line, so every scrape in the suite doubles as a
// format check.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, fields[3])
			}
			typed[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		if valStr != "+Inf" && valStr != "NaN" {
			if _, err := strconv.ParseFloat(valStr, 64); err != nil {
				t.Fatalf("line %d: bad sample value %q: %v", ln+1, valStr, err)
			}
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, line)
			}
			name = key[:i]
			for _, pair := range splitLabels(key[i+1 : len(key)-1]) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 || !strings.HasPrefix(pair[eq+1:], `"`) || !strings.HasSuffix(pair, `"`) {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
			}
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("line %d: sample %q precedes its TYPE comment", ln+1, name)
			}
		}
		v, _ := strconv.ParseFloat(valStr, 64)
		samples[key] = v
	}
	return samples
}

func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func scrape(t *testing.T, m *Metrics) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("scrape status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	return parsePrometheus(t, rec.Body.String())
}

func TestMetricsCountersAndGauges(t *testing.T) {
	m := newMetrics()
	m.requests.Add(3, "ok")
	m.requests.Add(1, "breaker_open")
	m.retries.Add(2, "network_error")
	m.breakerState.Set(2)
	m.estimate.Set(0.87)
	m.alarm.Set(1)
	m.shadowDropped.Add(5, "dropped")

	s := scrape(t, m)
	checks := map[string]float64{
		`gateway_requests_total{outcome="ok"}`:                  3,
		`gateway_requests_total{outcome="breaker_open"}`:        1,
		`gateway_backend_retries_total{reason="network_error"}`: 2,
		`gateway_breaker_state`:                                 2,
		`gateway_estimated_score`:                               0.87,
		`gateway_alarm`:                                         1,
		`gateway_shadow_batches_total{fate="dropped"}`:          5,
	}
	for key, want := range checks {
		if got, ok := s[key]; !ok || got != want {
			t.Fatalf("%s = %v (present=%v), want %v\nscrape: %v", key, got, ok, want, s)
		}
	}
}

func TestMetricsHistogram(t *testing.T) {
	m := newMetrics()
	m.latency.Observe(0.003, "ok")
	m.latency.Observe(0.02, "ok")
	m.latency.Observe(42, "ok") // beyond the last bound: only +Inf

	s := scrape(t, m)
	if got := s[`gateway_request_duration_seconds_bucket{le="0.005",outcome="ok"}`]; got != 1 {
		t.Fatalf("le=0.005 bucket = %v, want 1", got)
	}
	if got := s[`gateway_request_duration_seconds_bucket{le="0.025",outcome="ok"}`]; got != 2 {
		t.Fatalf("le=0.025 bucket = %v, want 2", got)
	}
	if got := s[`gateway_request_duration_seconds_bucket{le="+Inf",outcome="ok"}`]; got != 3 {
		t.Fatalf("+Inf bucket = %v, want 3", got)
	}
	if got := s[`gateway_request_duration_seconds_count{outcome="ok"}`]; got != 3 {
		t.Fatalf("count = %v, want 3", got)
	}
	sum := s[`gateway_request_duration_seconds_sum{outcome="ok"}`]
	if sum < 42 || sum > 42.1 {
		t.Fatalf("sum = %v", sum)
	}
	// Buckets must be cumulative (monotone non-decreasing).
	var keys []string
	for k := range s {
		if strings.HasPrefix(k, "gateway_request_duration_seconds_bucket") && !strings.Contains(k, "+Inf") {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		return bucketBound(t, keys[i]) < bucketBound(t, keys[j])
	})
	prev := 0.0
	for _, k := range keys {
		if s[k] < prev {
			t.Fatalf("bucket %s = %v below previous %v (not cumulative)", k, s[k], prev)
		}
		prev = s[k]
	}
}

func bucketBound(t *testing.T, key string) float64 {
	t.Helper()
	i := strings.Index(key, `le="`)
	rest := key[i+4:]
	j := strings.IndexByte(rest, '"')
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		t.Fatalf("bucket key %q: %v", key, err)
	}
	return v
}

// TestMetricsExpositionConformance populates every gateway family and
// lints the rendered exposition with the shared conformance checker:
// name/label charsets, HELP/TYPE placement, family contiguity, label
// escaping, and the histogram _bucket/_sum/_count invariants.
func TestMetricsExpositionConformance(t *testing.T) {
	m := newMetrics()
	m.requests.Add(3, "ok")
	m.requests.Add(1, "upstream_5xx")
	m.latency.Observe(0.004, "ok")
	m.latency.Observe(7, "backend_unavailable")
	m.retries.Add(2, "network_error")
	m.retries.Add(1, "upstream_transient")
	m.breakerState.Set(1)
	m.breakerTransitions.Add(1, "open")
	m.breakerTransitions.Add(1, "half_open")
	m.shadowDepth.Set(3)
	m.shadowDropped.Add(4, "observed")
	m.shadowDropped.Add(1, "dropped")
	m.shadowDropped.Add(1, "undecodable")
	m.estimate.Set(0.91)
	m.alarm.Set(0)

	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("content type = %q, want the canonical %q", got, obs.ContentType)
	}
	if errs := obs.Lint(rec.Body.String()); len(errs) > 0 {
		t.Fatalf("gateway exposition not conformant:\n%v\n%s", errs, rec.Body.String())
	}
	// All nine families must be present.
	for _, fam := range []string{
		"gateway_requests_total", "gateway_request_duration_seconds",
		"gateway_backend_retries_total", "gateway_breaker_state",
		"gateway_breaker_transitions_total", "gateway_shadow_queue_depth",
		"gateway_shadow_batches_total", "gateway_estimated_score", "gateway_alarm",
	} {
		if !strings.Contains(rec.Body.String(), "# TYPE "+fam+" ") {
			t.Fatalf("family %q missing from exposition", fam)
		}
	}
}

func TestMetricsMethodGuard(t *testing.T) {
	m := newMetrics()
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

func TestMetricsRenderIsDeterministic(t *testing.T) {
	m := newMetrics()
	for i := 0; i < 10; i++ {
		m.requests.Add(float64(i), fmt.Sprintf("outcome%d", i))
	}
	first := httptest.NewRecorder()
	m.Handler().ServeHTTP(first, httptest.NewRequest("GET", "/metrics", nil))
	for i := 0; i < 5; i++ {
		again := httptest.NewRecorder()
		m.Handler().ServeHTTP(again, httptest.NewRequest("GET", "/metrics", nil))
		if again.Body.String() != first.Body.String() {
			t.Fatal("metric rendering order is not deterministic")
		}
	}
}
