package gateway

import (
	"context"
	"errors"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ListenAndServe runs an HTTP server with graceful shutdown: on SIGINT
// or SIGTERM it stops accepting connections and drains in-flight
// requests for up to drain before exiting. It returns nil after a clean
// drain, the shutdown error when the drain deadline is exceeded, or the
// listener error if serving fails outright. Shared by ppm-serve and
// ppm-gateway so every serving binary behaves the same under
// orchestrator restarts.
func ListenAndServe(addr string, handler http.Handler, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return listenAndServeCtx(ctx, addr, handler, drain)
}

// listenAndServeCtx is the testable core of ListenAndServe: the caller
// owns the shutdown trigger.
func listenAndServeCtx(ctx context.Context, addr string, handler http.Handler, drain time.Duration) error {
	if drain <= 0 {
		drain = 5 * time.Second
	}
	srv := &http.Server{Addr: addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			return err
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
