package gateway

import (
	"context"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"blackboxval/internal/cloud"
	"blackboxval/internal/data"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
)

// shadowTap feeds proxied response bodies into the performance monitor
// off the hot path. A bounded queue decouples serving latency from
// shadow-validation cost; under pressure the tap drops the OLDEST
// queued batch — recency matters more than completeness for drift
// detection, and traffic must never block on validation.
type shadowTap struct {
	mon     *monitor.Monitor
	logger  *log.Logger
	metrics *Metrics

	mu    sync.Mutex
	queue []shadowItem // bounded FIFO of raw /predict_proba response bodies
	cap   int
	wake  chan struct{} // 1-buffered worker doorbell
	done  chan struct{}
	wg    sync.WaitGroup

	observed atomic.Int64

	// onRecord observes each monitor record (gauge updates).
	onRecord func(monitor.Record)
	// observeStage, when set, times the monitor_observe stage into the
	// serving SLO observatory (runs on the shadow worker, off the hot
	// path).
	observeStage func(stage string, seconds float64, requestID string)
	// rawDecoder, when set, recovers the raw serving rows from the
	// request body so monitor batch observers (the incident reservoir)
	// see them. Nil = response-only tap.
	rawDecoder func(reqBody []byte) (*data.Dataset, error)
}

func newShadowTap(mon *monitor.Monitor, capacity int, logger *log.Logger, metrics *Metrics, onRecord func(monitor.Record), rawDecoder func([]byte) (*data.Dataset, error)) *shadowTap {
	if capacity <= 0 {
		capacity = 256
	}
	t := &shadowTap{
		mon:        mon,
		logger:     logger,
		metrics:    metrics,
		cap:        capacity,
		wake:       make(chan struct{}, 1),
		done:       make(chan struct{}),
		onRecord:   onRecord,
		rawDecoder: rawDecoder,
	}
	t.wg.Add(1)
	go t.run()
	return t
}

// shadowItem is one queued batch: the raw backend response, optionally
// the request body that produced it (only retained when a raw decoder
// wants it — doubling queue memory for nothing is not worth it), plus
// the correlation id and trace context of the serving request, so the
// asynchronous monitor observation still lands in the request's trace.
type shadowItem struct {
	reqBody   []byte
	body      []byte
	requestID string
	trace     obs.TraceContext
}

// Enqueue hands one raw response body and its request id to the tap. It
// never blocks: when the queue is full the oldest pending batch is
// evicted.
func (t *shadowTap) Enqueue(body []byte, requestID string) {
	t.EnqueueWithRequest(nil, body, requestID)
}

// EnqueueWithRequest is Enqueue carrying the request body as well, for
// raw-row capture. The request body is dropped at the door when no
// decoder is configured.
func (t *shadowTap) EnqueueWithRequest(reqBody, body []byte, requestID string) {
	t.EnqueueWithTrace(reqBody, body, requestID, obs.TraceContext{})
}

// EnqueueWithTrace is EnqueueWithRequest carrying the serving request's
// trace context (the gateway_request span's coordinates): the queued
// observation becomes a child span of the request even though it runs
// on the shadow worker after the response was already sent.
func (t *shadowTap) EnqueueWithTrace(reqBody, body []byte, requestID string, tc obs.TraceContext) {
	if t.rawDecoder == nil {
		reqBody = nil
	}
	t.mu.Lock()
	if len(t.queue) >= t.cap {
		t.queue = t.queue[1:]
		t.metrics.shadowDropped.Add(1, "dropped")
	}
	t.queue = append(t.queue, shadowItem{reqBody: reqBody, body: body, requestID: requestID, trace: tc})
	t.mu.Unlock()
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// Depth returns the number of batches waiting in the queue.
func (t *shadowTap) Depth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.queue)
}

// Observed returns how many batches reached the monitor (test sync aid).
func (t *shadowTap) Observed() int64 { return t.observed.Load() }

// Close stops the worker after it drains the current queue.
func (t *shadowTap) Close() {
	close(t.done)
	t.wg.Wait()
}

func (t *shadowTap) run() {
	defer t.wg.Done()
	for {
		item, ok := t.pop()
		if ok {
			t.observe(item)
			continue
		}
		select {
		case <-t.wake:
		case <-t.done:
			// Drain whatever is left so no observed batch is lost on
			// graceful shutdown, then exit.
			for {
				item, ok := t.pop()
				if !ok {
					return
				}
				t.observe(item)
			}
		}
	}
}

func (t *shadowTap) pop() (shadowItem, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.queue) == 0 {
		return shadowItem{}, false
	}
	item := t.queue[0]
	t.queue = t.queue[1:]
	return item, true
}

func (t *shadowTap) observe(item shadowItem) {
	proba, _, err := cloud.ParseProbaResponse(item.body)
	if err != nil || proba.Rows == 0 {
		t.metrics.shadowDropped.Add(1, "undecodable")
		if err != nil && t.logger != nil {
			t.logger.Printf("gateway: shadow tap cannot decode backend response: %v", err)
		}
		return
	}
	var batch *data.Dataset
	if t.rawDecoder != nil && item.reqBody != nil {
		ds, err := t.rawDecoder(item.reqBody)
		if err != nil {
			// Attribution degrades gracefully: observe the outputs anyway.
			t.metrics.shadowDropped.Add(1, "raw_undecodable")
			if t.logger != nil {
				t.logger.Printf("gateway: shadow tap cannot decode request body: %v", err)
			}
		} else {
			batch = ds
		}
	}
	observeStart := time.Now()
	ctx := context.Background()
	if !item.trace.TraceID.IsZero() {
		ctx = obs.ContextWithTrace(ctx, item.trace)
	}
	rec := t.mon.ObserveBatchProbaCtx(ctx, batch, proba, item.requestID)
	if t.observeStage != nil {
		t.observeStage(StageMonitorObserve, time.Since(observeStart).Seconds(), item.requestID)
	}
	t.observed.Add(1)
	t.metrics.shadowDropped.Add(1, "observed")
	if t.onRecord != nil {
		t.onRecord(rec)
	}
}
