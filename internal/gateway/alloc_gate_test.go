package gateway

// TestServingAllocGate is the allocs/op regression gate behind `make
// bench-serving`: it pushes the fixture batch through a live gateway
// (canned-response backend, real monitor shadow tap — the same
// protocol as the serving benchmark in internal/experiments) and fails
// when the per-request allocation count blows past the budget. The
// budget keeps ~4x headroom over the measured baseline (2000 fixed +
// 10 per row vs a ~2.6/row baseline) so it never flakes on runtime or
// stdlib drift, but catches the class of regression that matters: an
// accidental per-row allocation on the hot path multiplies allocs/op
// by the batch size and sails past the ceiling.

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"

	"blackboxval/internal/cloud"
	"blackboxval/internal/monitor"
)

func TestServingAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate runs a testing.Benchmark calibration loop")
	}
	f := getFixture(t)
	mon, err := monitor.New(monitor.Config{Predictor: f.pred, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	body := encodeBatch(t, f.serving)
	rows := f.serving.Len()

	// Canned response: the real model's output for the batch, captured
	// once, so model compute does not count against the gateway budget.
	probe := httptest.NewServer(cloud.NewServer(f.model).Handler())
	resp, err := http.Post(probe.URL+"/predict_proba", "application/json", bytes.NewReader(body))
	if err != nil {
		probe.Close()
		t.Fatal(err)
	}
	canned, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	probe.Close()
	if err != nil {
		t.Fatal(err)
	}

	_, srv := newGateway(t, Config{
		Monitor: mon,
		Logger:  log.New(io.Discard, "", 0),
	}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Write(canned)
	}))

	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(srv.URL+"/predict_proba", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})

	// Budget: a fixed overhead for the request machinery plus a per-row
	// term covering JSON decode of the proxied batch (client + gateway +
	// shadow tap combined; AllocsPerOp counts process-wide mallocs).
	limit := int64(2000 + 10*rows)
	t.Logf("serving hot path: %d allocs/op over %d rows (%.2f/row), %d B/op, %.3fms/op, gate %d allocs/op",
		br.AllocsPerOp(), rows, float64(br.AllocsPerOp())/float64(rows),
		br.AllocedBytesPerOp(), float64(br.NsPerOp())/1e6, limit)
	if br.AllocsPerOp() > limit {
		t.Fatalf("serving hot path allocates %d allocs/op for a %d-row batch, over the %d gate — a per-row allocation crept onto the request path",
			br.AllocsPerOp(), rows, limit)
	}
}
