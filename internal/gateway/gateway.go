// Package gateway implements the shadow-validation serving proxy: the
// single production path between clients and a black box model server.
// It forwards POST /predict_proba traffic through a hardened client
// path — per-request timeouts, retries with exponential backoff and
// jitter on transient failures, and a circuit breaker that sheds load
// with 503/Retry-After while the backend is down — and, off the hot
// path, taps every successful response batch into a performance
// Predictor + Monitor (Schelter et al., SIGMOD 2020) so the model's
// estimated accuracy and alarm state are maintained continuously
// without labels. Observability: Prometheus text metrics at /metrics,
// a JSON /status, and a /healthz that turns 503 when the performance
// alarm fires, so orchestrators can act on model-quality health rather
// than mere liveness.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"blackboxval/internal/data"
	"blackboxval/internal/fed"
	"blackboxval/internal/labels"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
)

// Config configures a Gateway.
type Config struct {
	// Backend is the base URL of the model server, e.g.
	// "http://127.0.0.1:8080". Required.
	Backend string
	// Monitor receives the shadow traffic tap. Optional: without it the
	// gateway is a pure resilience proxy (no estimates, /healthz is
	// liveness-only).
	Monitor *monitor.Monitor
	// Labels, when set, mounts the label-feedback endpoints (/labels,
	// /labels/requests, /labels/status) so delayed ground truth posted by
	// labeling systems joins the shadow traffic this gateway served. The
	// store must be registered as a batch observer on the same Monitor.
	Labels *labels.Store
	// HTTPClient overrides the transport used to reach the backend.
	HTTPClient *http.Client
	// RequestTimeout bounds each backend attempt (default 10s).
	RequestTimeout time.Duration
	// MaxRetries is the number of re-attempts after the first try on
	// transient failures (default 2).
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff schedule: attempt i
	// waits ~ RetryBaseDelay * 2^i with jitter (default 50ms).
	RetryBaseDelay time.Duration
	// Breaker tunes the circuit breaker.
	Breaker BreakerConfig
	// ShadowQueueSize bounds the async validation queue (default 256).
	ShadowQueueSize int
	// RawDecoder, when set alongside Monitor, decodes each tapped
	// request body back into the raw serving rows (cloud.DecodeRequest
	// with the bundle's class list) so the monitor's batch observers —
	// the incident flight recorder's reservoir — see the features that
	// produced the outputs. Nil disables raw capture: the tap then
	// carries response bodies only, exactly as before.
	RawDecoder func(reqBody []byte) (*data.Dataset, error)
	// MaxBodyBytes caps accepted request bodies (default 256 MiB, the
	// same cap the model server applies).
	MaxBodyBytes int64
	// ReplicaName identifies this gateway in /federate documents and on
	// fleet dashboards (default: the request-id prefix, which is unique
	// per process).
	ReplicaName string
	// SLO tunes the serving SLO observatory (latency budget, burn-rate
	// windows, exemplar slots). The zero value enables it with
	// production defaults; see SLOConfig.
	SLO SLOConfig
	// Logger receives operational messages (nil = standard logger).
	Logger *log.Logger
	// Tracer retains per-request span trees for /debug/spans (nil =
	// obs.DefaultTracer()). Tests inject private tracers here.
	Tracer *obs.Tracer
	// TraceSampleRate is the deterministic head-sampling rate applied
	// to traces this gateway mints for clients that arrive without a
	// traceparent (<=0 or unset = 1.0, sample everything). Requests
	// that do carry a traceparent keep the caller's sampled flag — the
	// caller computed it with the same pure function of the trace-id
	// bits, so the fleet agrees on every keep/drop verdict.
	TraceSampleRate float64
}

func (c *Config) defaults() {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.Tracer == nil {
		c.Tracer = obs.DefaultTracer()
	}
	if c.TraceSampleRate <= 0 || c.TraceSampleRate > 1 {
		c.TraceSampleRate = 1
	}
}

// Request outcomes used as metric label values.
const (
	outcomeOK          = "ok"
	outcomeUpstream4xx = "upstream_4xx"
	outcomeUpstream5xx = "upstream_5xx"
	outcomeBackendDown = "backend_unavailable"
	outcomeBreakerOpen = "breaker_open"
	outcomeBadRequest  = "bad_request"
)

// Gateway is the shadow-validation reverse proxy. Create with New,
// mount Handler, and Close when done.
type Gateway struct {
	cfg     Config
	breaker *Breaker
	metrics *Metrics
	shadow  *shadowTap
	slo     *sloTracker

	// Request-id mint: a random per-process prefix plus a sequence, so
	// ids from gateway restarts never collide in aggregated logs.
	idPrefix string
	idSeq    atomic.Int64
	// lastFailID remembers the request id of the most recent backend
	// failure, so a breaker trip can be correlated to the request that
	// caused it.
	lastFailID atomic.Value // string

	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// New validates the configuration and returns a ready gateway.
func New(cfg Config) (*Gateway, error) {
	cfg.defaults()
	if cfg.Backend == "" {
		return nil, fmt.Errorf("gateway: a backend URL is required")
	}
	g := &Gateway{
		cfg:     cfg,
		metrics: newMetrics(),
		jitter:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	g.idPrefix = fmt.Sprintf("gw-%04x", g.jitter.Intn(1<<16))
	g.lastFailID.Store("")
	g.slo = newSLOTracker(cfg.SLO, g.metrics.reg)
	g.breaker = NewBreaker(cfg.Breaker)
	g.breaker.onTransition = func(to BreakerState) {
		g.metrics.breakerState.Set(float64(breakerGaugeValue(to)))
		g.metrics.breakerTransitions.Add(1, to.String())
		g.cfg.Logger.Printf("gateway: circuit breaker -> %s", to)
		// Structured trip event with the request id of the most recent
		// backend failure (empty on success-driven transitions), so a
		// trip can be traced back to the request that caused it.
		id, _ := g.lastFailID.Load().(string)
		slog.Warn("gateway breaker transition", "state", to.String(), "request_id", id)
	}
	if cfg.Monitor != nil {
		g.shadow = newShadowTap(cfg.Monitor, cfg.ShadowQueueSize, cfg.Logger, g.metrics, func(rec monitor.Record) {
			g.metrics.estimate.Set(rec.Estimate)
			g.metrics.alarm.Set(boolGauge(cfg.Monitor.Alarming()))
		}, cfg.RawDecoder)
		g.shadow.observeStage = g.slo.observeStage
		g.metrics.shadowDepth.SetFunc(func() float64 { return float64(g.shadow.Depth()) })
	}
	return g, nil
}

// Close releases the gateway's background resources (the shadow worker
// drains its queue first).
func (g *Gateway) Close() {
	if g.shadow != nil {
		g.shadow.Close()
	}
}

// Metrics exposes the registry (used by tests and the status handler).
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// Breaker exposes the circuit breaker state.
func (g *Gateway) Breaker() *Breaker { return g.breaker }

// ShadowObserved reports how many batches the shadow tap has fed to the
// monitor so far (0 without a monitor). Useful for tests and draining.
func (g *Gateway) ShadowObserved() int64 {
	if g.shadow == nil {
		return 0
	}
	return g.shadow.Observed()
}

// Handler returns the gateway's HTTP surface:
//
//	POST /predict_proba  — proxied to the backend, bit-identical body
//	GET  /metrics        — Prometheus text exposition
//	GET  /slo            — JSON: per-stage latency quantiles, burn
//	                       rates, top exemplars (the SLO observatory)
//	GET  /status         — JSON: breaker state, monitor summary
//	GET  /healthz        — 200 while healthy, 503 while the performance
//	                       alarm fires
//	GET  /debug/pprof/*  — Go profiling endpoints
//	GET  /debug/spans    — recent span trees as JSON
//	     /monitor/*      — the monitor's own dashboard (when configured)
//	GET  /federate       — mergeable drift state for fleet aggregation
//	                       (when a monitor is configured)
//	     /labels*        — delayed ground-truth ingestion, the active
//	                       sampling worklist, and assessment status
//	                       (when a label store is configured)
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict_proba", g.handleProxy)
	mux.Handle("/metrics", g.metrics.Handler())
	mux.HandleFunc("/slo", g.handleSLO)
	mux.HandleFunc("/status", g.handleStatus)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.Handle("/debug/spans", g.cfg.Tracer.Handler())
	traceService := g.cfg.ReplicaName
	if traceService == "" {
		traceService = g.idPrefix
	}
	mux.Handle("/debug/traces", g.cfg.Tracer.TraceHandler(traceService))
	mux.Handle("/debug/traces/", g.cfg.Tracer.TraceHandler(traceService))
	obs.MountPprof(mux)
	if g.cfg.Monitor != nil {
		mux.Handle("/monitor/", http.StripPrefix("/monitor", g.cfg.Monitor.Handler()))
		replica := g.cfg.ReplicaName
		if replica == "" {
			replica = g.idPrefix
		}
		mux.Handle("/federate", fed.ReplicaHandlerServing(g.cfg.Monitor, replica, g.servingDoc))
	}
	if g.cfg.Labels != nil {
		mux.Handle("/labels", g.cfg.Labels.Handler())
		mux.Handle("/labels/", g.cfg.Labels.Handler())
	}
	return mux
}

// mintRequestID returns the next correlation id, e.g. "gw-3f2a-00000017".
func (g *Gateway) mintRequestID() string {
	return fmt.Sprintf("%s-%08d", g.idPrefix, g.idSeq.Add(1))
}

func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	g.slo.inflight.Add(1)
	defer g.slo.inflight.Add(-1)

	// Correlate before anything can fail: reuse the client's id or mint
	// one, pin it on the response header (every status class, including
	// the error paths below), and carry it on the request span.
	id := r.Header.Get(obs.RequestIDHeader)
	if id == "" {
		id = g.mintRequestID()
	}
	w.Header().Set(obs.RequestIDHeader, id)

	// Trace context: extract the client's traceparent (a traced load
	// generator or an upstream hop) or mint a fresh trace, head-sampled
	// deterministically from its id bits. The span joins the trace and
	// the response echoes the traceparent so the caller can open
	// /debug/traces/{traceid} — trace id and X-Request-ID are linked
	// 1:1 through the span's request_id attribute.
	tc, traced := g.extractTrace(r)
	ctx := r.Context()
	if traced {
		ctx = obs.ContextWithTrace(ctx, tc)
	}
	ctx, span := obs.StartSpan(obs.WithTracer(ctx, g.cfg.Tracer), "gateway_request")
	span.SetAttr("request_id", id)
	if traced {
		w.Header().Set(obs.TraceparentHeader, span.TraceContext().Traceparent())
	}

	outcome := outcomeBadRequest
	status := http.StatusOK
	defer func() {
		span.SetAttr("outcome", outcome)
		span.SetMetric("status", float64(status))
		span.End()
		g.finish(outcome, start, id)
		slog.Debug("gateway request", "request_id", id, "outcome", outcome,
			"status", status, "duration", time.Since(start))
	}()

	if r.Method != http.MethodPost {
		status = http.StatusMethodNotAllowed
		http.Error(w, "POST required", status)
		return
	}
	decodeStart := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	g.slo.observeStage(StageDecode, time.Since(decodeStart).Seconds(), id)
	if err != nil {
		status = http.StatusBadRequest
		http.Error(w, err.Error(), status)
		return
	}

	allowed, retryAfter := g.breaker.Allow()
	if !allowed {
		outcome, status = outcomeBreakerOpen, http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
		http.Error(w, "backend circuit breaker open", status)
		return
	}

	relayStart := time.Now()
	resp, err := g.forward(ctx, body, id)
	g.slo.observeStage(StageRelay, time.Since(relayStart).Seconds(), id)
	if err != nil {
		g.lastFailID.Store(id)
		g.breaker.Failure()
		outcome, status = outcomeBackendDown, http.StatusBadGateway
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		http.Error(w, fmt.Sprintf("backend unavailable: %v", err), status)
		return
	}
	g.breaker.Success()

	// Relay the backend response bit-identically: headers, status, body.
	// The correlation header is already pinned above; skip the backend's
	// echo of it so the client never sees a duplicate.
	for k, vs := range resp.header {
		if http.CanonicalHeaderKey(k) == http.CanonicalHeaderKey(obs.RequestIDHeader) {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	status = resp.status
	w.WriteHeader(resp.status)
	w.Write(resp.body)

	outcome = outcomeOK
	switch {
	case resp.status >= 500:
		outcome = outcomeUpstream5xx
	case resp.status >= 400:
		outcome = outcomeUpstream4xx
	case g.shadow != nil:
		// Tap the successful batch for shadow validation, off the hot
		// path; the id and the trace context ride along into the monitor
		// observation, and the request body too when raw capture is on.
		enqueueStart := time.Now()
		g.shadow.EnqueueWithTrace(body, resp.body, id, span.TraceContext())
		g.slo.observeStage(StageShadowEnqueue, time.Since(enqueueStart).Seconds(), id)
	}
}

// extractTrace parses the request's traceparent, or mints a new trace
// context under the configured head-sampling rate when none (or a
// malformed one) arrived. The second return is false only when minting
// failed, in which case the request proceeds untraced.
func (g *Gateway) extractTrace(r *http.Request) (obs.TraceContext, bool) {
	if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
		if tc, err := obs.ParseTraceparent(tp); err == nil {
			return tc, true
		}
	}
	tc, err := obs.NewTraceContext(g.cfg.TraceSampleRate)
	if err != nil {
		return obs.TraceContext{}, false
	}
	return tc, true
}

// backendResponse is a fully buffered backend reply.
type backendResponse struct {
	status int
	header http.Header
	body   []byte
}

// transientStatus reports backend statuses worth retrying: the backend
// is overloaded or restarting, not rejecting the request itself.
func transientStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// forward relays the request body to the backend with per-attempt
// timeouts and exponential backoff on transient failures (network
// errors and 502/503/504 statuses). It returns the first non-transient
// response, or the last failure once the retry budget is exhausted —
// a persistent transient failure surfaces as an error so the breaker
// counts it.
func (g *Gateway) forward(ctx context.Context, body []byte, id string) (*backendResponse, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := g.attempt(ctx, body, id)
		var reason string
		switch {
		case err != nil:
			lastErr = err
			reason = "network_error"
			if ctx.Err() != nil {
				return nil, err
			}
		case transientStatus(resp.status):
			lastErr = fmt.Errorf("backend returned transient status %d", resp.status)
			reason = "upstream_transient"
		default:
			return resp, nil
		}
		if attempt >= g.cfg.MaxRetries {
			return nil, lastErr
		}
		g.metrics.retries.Add(1, reason)
		if err := g.sleep(ctx, g.backoff(attempt+1)); err != nil {
			return nil, err
		}
	}
}

func (g *Gateway) attempt(ctx context.Context, body []byte, id string) (*backendResponse, error) {
	// Propagate trace context across the hop: sampled requests get a
	// relay child span (the parent the backend's spans attach to);
	// unsampled ones skip the span but still carry the traceparent so
	// the whole fleet keeps agreeing on the keep/drop verdict.
	tc, traced := obs.TraceFromContext(ctx)
	if traced && tc.Sampled() {
		relayCtx, relay := obs.StartSpan(ctx, "gateway_relay")
		relay.SetAttr("request_id", id)
		defer relay.End()
		ctx = relayCtx
		tc = relay.TraceContext()
	}
	attemptCtx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, g.cfg.Backend+"/predict_proba", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("building backend request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, id)
	if traced {
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	}
	client := g.cfg.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading backend response: %w", err)
	}
	return &backendResponse{status: resp.StatusCode, header: resp.Header.Clone(), body: respBody}, nil
}

// backoff returns the delay before the given (1-based) retry attempt:
// full jitter over an exponentially growing window.
func (g *Gateway) backoff(attempt int) time.Duration {
	window := g.cfg.RetryBaseDelay << (attempt - 1)
	g.jitterMu.Lock()
	defer g.jitterMu.Unlock()
	return window/2 + time.Duration(g.jitter.Int63n(int64(window/2)+1))
}

func (g *Gateway) sleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *Gateway) finish(outcome string, start time.Time, id string) {
	elapsed := time.Since(start).Seconds()
	g.metrics.requests.Add(1, outcome)
	g.metrics.latency.Observe(elapsed, outcome)
	g.slo.observeRequest(elapsed, id)
}

// SLOTimeline exposes the per-request SLO timeline, so callers can
// wire the stock alert engine (cli.WireAlertEngine / OnWindowClose)
// onto the burn-rate series.
func (g *Gateway) SLOTimeline() *obs.TimeSeries { return g.slo.timeline }

// SLO returns the current serving SLO document (the /slo payload).
func (g *Gateway) SLO() SLODoc { return g.slo.doc(5) }

// servingDoc snapshots the SLO tracker into the /federate serving
// section: cloned per-stage histograms the aggregator can merge into
// fleet quantiles bit-equal to a single-node union stream.
func (g *Gateway) servingDoc() *fed.ServingDoc {
	hists, total, over, _, _, _ := g.slo.snapshot()
	return &fed.ServingDoc{
		BudgetSeconds: g.slo.cfg.Budget.Seconds(),
		Target:        g.slo.cfg.Target,
		Requests:      total,
		OverBudget:    over,
		Stages:        hists,
	}
}

// handleSLO serves the SLO document with the monitor endpoints' cache
// hygiene: explicit Content-Type, Cache-Control: no-store (live
// operational state must never be cached).
func (g *Gateway) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	if err := json.NewEncoder(w).Encode(g.SLO()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Status is the JSON document served at /status.
type Status struct {
	Backend       string           `json:"backend"`
	BreakerState  string           `json:"breaker_state"`
	ShadowEnabled bool             `json:"shadow_enabled"`
	ShadowDepth   int              `json:"shadow_queue_depth,omitempty"`
	Alarming      bool             `json:"alarming"`
	AlarmLine     float64          `json:"alarm_line,omitempty"`
	Monitor       *monitor.Summary `json:"monitor,omitempty"`
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	st := Status{
		Backend:       g.cfg.Backend,
		BreakerState:  g.breaker.State().String(),
		ShadowEnabled: g.shadow != nil,
	}
	if g.cfg.Monitor != nil {
		st.ShadowDepth = g.shadow.Depth()
		st.Alarming = g.cfg.Monitor.Alarming()
		st.AlarmLine = g.cfg.Monitor.AlarmLine()
		summary := g.cfg.Monitor.Summarize()
		st.Monitor = &summary
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(st); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleHealthz reports model-quality health: 503 while the performance
// alarm fires so orchestrators can route away from a degraded model,
// 200 otherwise.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.cfg.Monitor != nil && g.cfg.Monitor.Alarming() {
		http.Error(w, "performance alarm: estimated score below alarm line", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func breakerGaugeValue(s BreakerState) int {
	switch s {
	case BreakerClosed:
		return 0
	case BreakerHalfOpen:
		return 1
	default:
		return 2
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
