package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blackboxval/internal/cloud"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
)

// TestRequestIDPinnedOnEveryStatusClass pins the correlation contract:
// every response leaving the proxy path carries exactly one
// X-Request-ID, whatever the status — success, relayed backend errors,
// and every gateway-originated failure (405, 400, 502, 503, 504).
func TestRequestIDPinnedOnEveryStatusClass(t *testing.T) {
	f := getFixture(t)
	real := cloud.NewServer(f.model).Handler()
	var backendSawID string
	var mu sync.Mutex
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		backendSawID = r.Header.Get(obs.RequestIDHeader)
		mu.Unlock()
		// Echo the id like a backend running obs.Middleware would; the
		// gateway must still emit the header exactly once.
		if id := r.Header.Get(obs.RequestIDHeader); id != "" {
			w.Header().Set(obs.RequestIDHeader, id)
		}
		real.ServeHTTP(w, r)
	})
	_, gwSrv := newGateway(t, Config{
		MaxRetries:     -1, // no retries: error paths stay single-attempt
		RequestTimeout: 5 * time.Second,
		Breaker:        BreakerConfig{FailureThreshold: 100, Cooldown: time.Minute},
		Tracer:         obs.NewTracer(16),
		Logger:         log.New(io.Discard, "", 0),
	}, backend)

	requireID := func(t *testing.T, resp *http.Response, wantStatus int) string {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
		}
		ids := resp.Header.Values(obs.RequestIDHeader)
		if len(ids) != 1 || ids[0] == "" {
			t.Fatalf("X-Request-ID values = %v, want exactly one non-empty id", ids)
		}
		return ids[0]
	}

	body := encodeBatch(t, f.serving)

	// 200: proxied success, id minted and propagated to the backend.
	resp, _ := post(t, gwSrv.URL, body)
	id := requireID(t, resp, http.StatusOK)
	mu.Lock()
	if backendSawID != id {
		t.Fatalf("backend saw id %q, client saw %q", backendSawID, id)
	}
	mu.Unlock()

	// Client-supplied ids are reused, not replaced.
	req, _ := http.NewRequest(http.MethodPost, gwSrv.URL+"/predict_proba", bytes.NewReader(body))
	req.Header.Set(obs.RequestIDHeader, "client-chose-this")
	clientResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	clientResp.Body.Close()
	if got := requireID(t, clientResp, http.StatusOK); got != "client-chose-this" {
		t.Fatalf("client id replaced with %q", got)
	}

	// Relayed backend 4xx.
	resp, _ = post(t, gwSrv.URL, []byte("{}"))
	requireID(t, resp, http.StatusBadRequest)

	// 405: method rejected by the gateway itself.
	getResp, err := http.Get(gwSrv.URL + "/predict_proba")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	requireID(t, getResp, http.StatusMethodNotAllowed)

	// 504: backend slower than the request timeout.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
	}))
	defer slow.Close()
	gSlow, err := New(Config{Backend: slow.URL, MaxRetries: -1,
		RequestTimeout: 20 * time.Millisecond, Tracer: obs.NewTracer(16),
		Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer gSlow.Close()
	slowSrv := httptest.NewServer(gSlow.Handler())
	defer slowSrv.Close()
	resp, _ = post(t, slowSrv.URL, body)
	requireID(t, resp, http.StatusGatewayTimeout)

	// 502 then 503: a dead backend trips a one-failure breaker; both the
	// failing response and the shed response carry ids.
	gDead, err := New(Config{Backend: "http://127.0.0.1:1", MaxRetries: -1,
		RequestTimeout: time.Second, Tracer: obs.NewTracer(16),
		Breaker: BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute},
		Logger:  log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer gDead.Close()
	deadSrv := httptest.NewServer(gDead.Handler())
	defer deadSrv.Close()
	resp, _ = post(t, deadSrv.URL, body)
	requireID(t, resp, http.StatusBadGateway)
	resp, _ = post(t, deadSrv.URL, body)
	requireID(t, resp, http.StatusServiceUnavailable)
}

// TestEndToEndCorrelationAndAlerting is the PR's acceptance scenario: a
// corruption ramp through the gateway's shadow path drives the drift
// timeline down, the matching alert rule fires exactly once (no
// flapping), the webhook receives the payload, and one sampled
// request's X-Request-ID shows up in the gateway log, the span export
// and the monitor observation.
func TestEndToEndCorrelationAndAlerting(t *testing.T) {
	f := getFixture(t)

	// Capture structured logs at debug level for the correlation check.
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	prevLogger := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(lockedWriter{&logMu, &logBuf},
		&slog.HandlerOptions{Level: slog.LevelDebug})))
	defer slog.SetDefault(prevLogger)

	mon, err := monitor.New(monitor.Config{Predictor: f.pred, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	// Webhook sink collecting alert payloads.
	var whMu sync.Mutex
	var payloads []alert.Event
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev alert.Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("webhook decode: %v", err)
			return
		}
		whMu.Lock()
		payloads = append(payloads, ev)
		whMu.Unlock()
	}))
	defer sink.Close()
	webhook, err := alert.NewWebhook(alert.WebhookConfig{URL: sink.URL})
	if err != nil {
		t.Fatal(err)
	}

	// Rule: the monitor's alarm signal held for 2 consecutive windows.
	engine, err := alert.New(alert.Config{
		Rules: []alert.Rule{{
			Name: "estimate_below_line", Series: "alarm", Op: ">=", Threshold: 1,
			ForWindows: 2, ClearWindows: 2, Severity: "critical",
		}},
		Notifier: webhook,
	})
	if err != nil {
		t.Fatal(err)
	}
	alertReg := obs.NewRegistry()
	engine.RegisterMetrics(alertReg)
	mon.Timeline().OnWindowClose(engine.Evaluate)

	tracer := obs.NewTracer(64)
	g, gwSrv := newGateway(t, Config{Monitor: mon, Tracer: tracer,
		Logger: log.New(io.Discard, "", 0)}, cloud.NewServer(f.model).Handler())

	// The corruption ramp: clean traffic decays into a severely scaled
	// feature distribution, exactly the drift the paper's predictor is
	// trained to catch.
	rng := rand.New(rand.NewSource(11))
	ramp := []float64{0, 0, 0.5, 0.95, 0.95, 0.95}
	var sampledID string
	for i, magnitude := range ramp {
		batch := f.serving
		if magnitude > 0 {
			batch = errorgen.Scaling{}.Corrupt(f.serving, magnitude, rng)
		}
		resp, _ := post(t, gwSrv.URL, encodeBatch(t, batch))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ramp batch %d status = %d", i, resp.StatusCode)
		}
		if i == 0 {
			sampledID = resp.Header.Get(obs.RequestIDHeader)
			if sampledID == "" {
				t.Fatal("no request id on sampled request")
			}
		}
	}
	waitObserved(t, g, int64(len(ramp)))
	webhook.Close() // drains pending deliveries

	// Timeline: one window per batch, estimates decline across the ramp
	// and end below the alarm line.
	windows := mon.Timeline().Windows()
	if len(windows) != len(ramp) {
		t.Fatalf("timeline windows = %d, want %d", len(windows), len(ramp))
	}
	first := windows[0].Series["estimate"].Mean()
	last := windows[len(windows)-1].Series["estimate"].Mean()
	if first <= last {
		t.Fatalf("estimate did not decline: first %v last %v", first, last)
	}
	if last >= mon.AlarmLine() {
		t.Fatalf("final estimate %v not below alarm line %v", last, mon.AlarmLine())
	}

	// The rule fired exactly once — hysteresis, no flapping.
	whMu.Lock()
	firing := 0
	for _, ev := range payloads {
		if ev.State == "firing" {
			firing++
		}
	}
	if firing != 1 {
		t.Fatalf("firing events = %d (payloads %+v), want exactly 1", firing, payloads)
	}
	if payloads[0].Rule != "estimate_below_line" || payloads[0].Severity != "critical" {
		t.Fatalf("webhook payload = %+v", payloads[0])
	}
	whMu.Unlock()
	var metricsOut strings.Builder
	if _, err := alertReg.WriteTo(&metricsOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metricsOut.String(), `ppm_alerts_total{rule="estimate_below_line"} 1`) {
		t.Fatalf("alert counter wrong:\n%s", metricsOut.String())
	}
	if !strings.Contains(metricsOut.String(), `ppm_alert_active{rule="estimate_below_line"} 1`) {
		t.Fatalf("alert gauge wrong:\n%s", metricsOut.String())
	}

	// Correlation: the sampled id is in the gateway's structured log...
	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logged, "request_id="+sampledID) {
		t.Fatalf("gateway log missing %q:\n%s", sampledID, logged)
	}
	// ...in the span export...
	spanJSON, err := tracer.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var spans []obs.SpanJSON
	if err := json.Unmarshal(spanJSON, &spans); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range spans {
		if sp.Attrs["request_id"] == sampledID {
			found = true
			if sp.Attrs["outcome"] != "ok" {
				t.Fatalf("sampled span outcome = %q", sp.Attrs["outcome"])
			}
		}
	}
	if !found {
		t.Fatalf("span export missing request id %q", sampledID)
	}
	// ...and on the monitor observation the shadow tap produced.
	found = false
	for _, rec := range mon.History() {
		if rec.RequestID == sampledID {
			found = true
		}
	}
	if !found {
		t.Fatalf("monitor history missing request id %q", sampledID)
	}
}

// lockedWriter serializes concurrent slog writes in tests.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
