package gateway

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"blackboxval/internal/cloud"
	"blackboxval/internal/core"
	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/models"
	"blackboxval/internal/monitor"
)

// BenchmarkGatewayOverhead isolates the proxy hop cost ("EXPERIMENTS.md:
// gateway overhead"). The backend returns a canned 200-row response so
// model compute does not mask the hop; sub-benchmarks measure the direct
// call, the proxied call, and the proxied call with the shadow tap
// feeding a real monitor.
func BenchmarkGatewayOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := datagen.Income(1500, 1).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 5, Seed: 1}, 64)
	if err != nil {
		b.Fatal(err)
	}

	batch := serving.Sample(200, rng)
	reqBody, err := cloud.EncodeRequest(batch)
	if err != nil {
		b.Fatal(err)
	}
	// Canned response: the real model's output for the batch, serialized
	// once, so every path returns identical bytes.
	probe := httptest.NewServer(cloud.NewServer(model).Handler())
	resp, err := http.Post(probe.URL+"/predict_proba", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		b.Fatal(err)
	}
	canned, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	probe.Close()
	if err != nil {
		b.Fatal(err)
	}
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Write(canned)
	}))
	defer backend.Close()

	hammer := func(b *testing.B, url string) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(url+"/predict_proba", "application/json", bytes.NewReader(reqBody))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	b.Run("direct", func(b *testing.B) {
		hammer(b, backend.URL)
	})

	b.Run("proxy", func(b *testing.B) {
		g, err := New(Config{Backend: backend.URL})
		if err != nil {
			b.Fatal(err)
		}
		defer g.Close()
		srv := httptest.NewServer(g.Handler())
		defer srv.Close()
		hammer(b, srv.URL)
	})

	b.Run("proxy+shadow", func(b *testing.B) {
		pred, err := core.TrainPredictor(model, test, core.PredictorConfig{
			Generators:  errorgen.KnownTabular(),
			Repetitions: 20,
			ForestSizes: []int{20},
			Seed:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
		mon, err := monitor.New(monitor.Config{Predictor: pred})
		if err != nil {
			b.Fatal(err)
		}
		g, err := New(Config{Backend: backend.URL, Monitor: mon})
		if err != nil {
			b.Fatal(err)
		}
		defer g.Close()
		srv := httptest.NewServer(g.Handler())
		defer srv.Close()
		hammer(b, srv.URL)
	})
}
