package gateway

import (
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"blackboxval/internal/cloud"
	"blackboxval/internal/data"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
	"blackboxval/internal/obs/incident"
)

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// scaleAge multiplies the "age" column by 1000 on a magnitude fraction
// of rows — a targeted single-column corruption whose attribution the
// incident bundle must pin on exactly that column.
func scaleAge(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	col := out.Frame.Column("age")
	for i, v := range col.Num {
		if rng.Float64() < magnitude {
			col.Num[i] = v * 1000
		}
	}
	return out
}

// TestEndToEndIncidentCapture is this PR's acceptance scenario: a
// single-column scaling corruption ramped through the gateway's shadow
// path (raw request bodies decoded back into datasets by RawDecoder)
// trips the alarm rule, the alert hook auto-captures an incident
// bundle, the bundle's per-column attribution ranks the corrupted
// column top-1, its worst-batch X-Request-IDs resolve in the monitor's
// /history, the /debug/incidents endpoints serve it the way
// cmd/ppm-gateway mounts them, and the persisted JSON renders to
// markdown through the same path ppm-diagnose uses.
func TestEndToEndIncidentCapture(t *testing.T) {
	f := getFixture(t)
	mon := newMonitor(t, f)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	dir := t.TempDir()
	reg := obs.NewRegistry()
	rec, err := incident.New(incident.Config{
		Reference:     f.serving,
		RefOutputs:    f.pred.TestOutputs(),
		Classes:       f.serving.Classes,
		Monitor:       mon,
		Dir:           dir,
		ReservoirRows: 256,
		Seed:          1,
		Registry:      reg,
		Tracer:        obs.NewTracer(64),
		Logger:        quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.RegisterMetrics(reg)
	mon.OnObserve(rec.ObserveBatch)

	engine, err := alert.New(alert.Config{
		Rules: []alert.Rule{{
			Name: "estimate_below_line", Series: "alarm", Op: ">=", Threshold: 1,
			ForWindows: 2, ClearWindows: 2, Severity: "critical",
		}},
		Notifier: rec.AlertNotifier(),
		Logger:   quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Timeline().OnWindowClose(engine.Evaluate)

	classes := append([]string(nil), f.serving.Classes...)
	g, _ := newGateway(t, Config{
		Monitor: mon,
		RawDecoder: func(body []byte) (*data.Dataset, error) {
			return cloud.DecodeRequest(body, classes)
		},
		Tracer: obs.NewTracer(64),
		Logger: log.New(io.Discard, "", 0),
	}, cloud.NewServer(f.model).Handler())

	// Mount the recorder next to the gateway handler exactly the way
	// cmd/ppm-gateway does.
	mux := http.NewServeMux()
	mux.Handle("/", g.Handler())
	mux.Handle(incident.MountPath, rec.Handler())
	mux.Handle(incident.MountPath+"/", rec.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// The deterministic ramp: clean traffic decays into an "age" column
	// scaled x1000 on nearly every row.
	rng := rand.New(rand.NewSource(3))
	ramp := []float64{0, 0, 0.6, 0.95, 0.95, 0.95}
	ids := make([]string, len(ramp))
	for i, magnitude := range ramp {
		batch := f.serving
		if magnitude > 0 {
			batch = scaleAge(f.serving, magnitude, rng)
		}
		resp, _ := post(t, srv.URL, encodeBatch(t, batch))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ramp batch %d status = %d", i, resp.StatusCode)
		}
		ids[i] = resp.Header.Get(obs.RequestIDHeader)
	}
	waitObserved(t, g, int64(len(ramp)))

	// The alarm rule auto-captured a bundle.
	bundles := rec.Bundles()
	if len(bundles) == 0 {
		t.Fatal("no incident bundle captured by the alert hook")
	}
	b := bundles[len(bundles)-1]
	if b.Reason != "alert:estimate_below_line" {
		t.Fatalf("bundle reason = %q", b.Reason)
	}

	// Attribution ranks the corrupted column top-1 and rejects it.
	if got := b.TopColumn(); got != "age" {
		t.Fatalf("top attributed column = %q, want age (attribution: %+v)", got, b.Attribution)
	}
	if !b.Attribution[0].Rejected {
		t.Fatalf("top attribution not rejected: %+v", b.Attribution[0])
	}

	// At least one worst-batch X-Request-ID came from this ramp and
	// resolves in the monitor's /history (served by the gateway mux).
	if len(b.WorstBatches) == 0 {
		t.Fatal("bundle has no worst batches")
	}
	rampIDs := make(map[string]bool, len(ids))
	for _, id := range ids {
		rampIDs[id] = true
	}
	wantID := ""
	for _, wb := range b.WorstBatches {
		if wb.RequestID != "" && rampIDs[wb.RequestID] {
			wantID = wb.RequestID
			break
		}
	}
	if wantID == "" {
		t.Fatalf("no worst-batch request id from the ramp: %+v", b.WorstBatches)
	}
	histResp, err := http.Get(srv.URL + "/monitor/history")
	if err != nil {
		t.Fatal(err)
	}
	hist := readAll(t, histResp)
	if !strings.Contains(hist, wantID) {
		t.Fatalf("/monitor/history does not resolve %q:\n%s", wantID, hist)
	}

	// The /debug/incidents surface serves the bundle the way the
	// operator reaches it.
	listResp, err := http.Get(srv.URL + incident.MountPath)
	if err != nil {
		t.Fatal(err)
	}
	list := readAll(t, listResp)
	if listResp.StatusCode != http.StatusOK || !strings.Contains(list, b.ID) {
		t.Fatalf("incident list status %d missing %s:\n%s", listResp.StatusCode, b.ID, list)
	}
	repResp, err := http.Get(srv.URL + incident.MountPath + "/" + b.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	rep := readAll(t, repResp)
	if !strings.Contains(rep, "| 1 | age |") {
		t.Fatalf("served report does not rank age first:\n%s", rep)
	}

	// The persisted JSON round-trips through ppm-diagnose's path:
	// LoadBundle + Markdown (report.Markdown delegates to the bundle's
	// own renderer for this type).
	loaded, err := incident.LoadBundle(filepath.Join(dir, b.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	md := loaded.Markdown()
	for _, want := range []string{"# Incident " + b.ID, "| 1 | age |", wantID} {
		if !strings.Contains(md, want) {
			t.Fatalf("diagnose markdown missing %q:\n%s", want, md)
		}
	}
}
