package gateway

import (
	"encoding/json"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blackboxval/internal/obs"
)

func TestBurnRing(t *testing.T) {
	r := newBurnRing(4)
	if r.fraction() != 0 {
		t.Fatal("empty ring should burn 0")
	}
	r.push(true)
	r.push(false)
	if got := r.fraction(); got != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", got)
	}
	r.push(true)
	r.push(true)
	if got := r.fraction(); got != 0.75 {
		t.Fatalf("fraction = %v, want 0.75", got)
	}
	// Eviction: four under-budget requests flush the window completely.
	for i := 0; i < 4; i++ {
		r.push(false)
	}
	if got := r.fraction(); got != 0 {
		t.Fatalf("fraction after flush = %v, want 0", got)
	}
}

// TestSLOTrackerBurnMath drives the tracker directly: with a 1ns budget
// every request is over, so both windows saturate at burn =
// 1/(1−target); an in-budget stream then decays the fast window first
// (it is shorter), exactly the asymmetry the multi-window rule exploits.
func TestSLOTrackerBurnMath(t *testing.T) {
	tr := newSLOTracker(SLOConfig{
		Budget: time.Nanosecond, Target: 0.9,
		WindowRequests: 4, FastRequests: 4, SlowRequests: 16,
	}, obs.NewRegistry())

	for i := 0; i < 16; i++ {
		tr.observeRequest(0.010, "slow-req")
	}
	doc := tr.doc(3)
	if doc.Requests != 16 || doc.OverBudget != 16 {
		t.Fatalf("requests=%d over=%d, want 16/16", doc.Requests, doc.OverBudget)
	}
	wantBurn := 1 / (1 - 0.9) // 100% over / 10% budget
	if math.Abs(doc.BurnFast-wantBurn) > 1e-12 || math.Abs(doc.BurnSlow-wantBurn) > 1e-12 {
		t.Fatalf("burn fast=%v slow=%v, want %v", doc.BurnFast, doc.BurnSlow, wantBurn)
	}
	if len(doc.Exemplars) == 0 || doc.Exemplars[0].RequestID != "slow-req" {
		t.Fatalf("exemplars = %+v, want the slow request id", doc.Exemplars)
	}

	// Four fast requests clear the fast window; the slow window still
	// remembers 12/16 over-budget requests.
	for i := 0; i < 4; i++ {
		tr.observeRequest(0, "fast-req")
	}
	doc = tr.doc(0)
	if doc.BurnFast != 0 {
		t.Fatalf("fast burn = %v, want 0 after recovery", doc.BurnFast)
	}
	if math.Abs(doc.BurnSlow-0.75*wantBurn) > 1e-12 {
		t.Fatalf("slow burn = %v, want %v", doc.BurnSlow, 0.75*wantBurn)
	}

	// The timeline recorded one window per WindowRequests commits, with
	// serving_burn = min(fast, slow) as a first-class series.
	windows := tr.timeline.Windows()
	if len(windows) != 5 {
		t.Fatalf("timeline windows = %d, want 5", len(windows))
	}
	last := windows[len(windows)-1]
	burn, err := last.Series[SeriesBurn].Reduce("last")
	if err != nil {
		t.Fatal(err)
	}
	if burn != 0 { // min(fast=0, slow>0) = 0: the page condition needs BOTH
		t.Fatalf("serving_burn = %v, want 0 (fast window recovered)", burn)
	}
	for _, series := range []string{SeriesServingLatency, SeriesServingOver, SeriesBurnFast, SeriesBurnSlow} {
		if _, ok := last.Series[series]; !ok {
			t.Fatalf("series %q missing from SLO window", series)
		}
	}
}

func TestBurnRateRulesValidate(t *testing.T) {
	rules := BurnRateRules(0)
	if len(rules) != 2 || rules[0].Threshold != 1 {
		t.Fatalf("default rules = %+v", rules)
	}
	if rules[0].Series != SeriesBurn || rules[1].Series != SeriesBurnFast {
		t.Fatalf("rule series = %q/%q", rules[0].Series, rules[1].Series)
	}
}

// TestServingSLOExpositionConformance pins the satellite contract: the
// gateway /metrics response carries the canonical content type AND
// Cache-Control: no-store, the exposition passes obs.Lint, and the new
// ppm_serving_* families are present alongside the nine legacy ones.
func TestServingSLOExpositionConformance(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"proba":[[0.5,0.5]],"classes":[0,1]}`))
	}))
	defer backend.Close()
	g, err := New(Config{Backend: backend.URL, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/predict_proba", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	if got := mResp.Header.Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("/metrics content type = %q, want %q", got, obs.ContentType)
	}
	if got := mResp.Header.Get("Cache-Control"); got != "no-store" {
		t.Fatalf("/metrics Cache-Control = %q, want no-store", got)
	}
	body, err := io.ReadAll(mResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.Lint(string(body)); len(errs) > 0 {
		t.Fatalf("gateway exposition not conformant: %v", errs)
	}
	for _, fam := range []string{
		"ppm_serving_stage_duration_seconds", "ppm_serving_inflight",
		"ppm_serving_alloc_bytes_per_req", "ppm_serving_over_budget_total",
		"ppm_serving_burn_rate",
	} {
		if !strings.Contains(string(body), "# TYPE "+fam+" ") {
			t.Fatalf("family %q missing from exposition", fam)
		}
	}
	if !strings.Contains(string(body), `ppm_serving_stage_duration_seconds_count{stage="request"} 1`) {
		t.Fatalf("request stage not observed:\n%s", body)
	}
}

// TestSLOEndpointDoc pins the /slo surface: headers (Content-Type +
// no-store), the method guard, and a document whose per-stage
// histograms carry the exemplar X-Request-ID of the slow request.
func TestSLOEndpointDoc(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"proba":[[0.9,0.1]],"classes":[0,1]}`))
	}))
	defer backend.Close()
	g, err := New(Config{Backend: backend.URL, Logger: log.New(io.Discard, "", 0),
		SLO: SLOConfig{Budget: time.Nanosecond, WindowRequests: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/predict_proba", strings.NewReader(`{}`))
	req.Header.Set(obs.RequestIDHeader, "slo-test-001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	sloResp, err := http.Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer sloResp.Body.Close()
	if got := sloResp.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("/slo content type = %q", got)
	}
	if got := sloResp.Header.Get("Cache-Control"); got != "no-store" {
		t.Fatalf("/slo Cache-Control = %q, want no-store", got)
	}
	var doc SLODoc
	if err := json.NewDecoder(sloResp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Requests != 1 || doc.OverBudget != 1 {
		t.Fatalf("doc = %+v, want 1 request over a 1ns budget", doc)
	}
	stages := map[string]bool{}
	for _, s := range doc.Stages {
		stages[s.Stage] = true
	}
	for _, want := range []string{StageRequest, StageDecode, StageRelay} {
		if !stages[want] {
			t.Fatalf("stage %q missing from doc: %+v", want, doc.Stages)
		}
	}
	if doc.Stages[0].Stage != StageRequest {
		t.Fatalf("stage order: first is %q, want request", doc.Stages[0].Stage)
	}
	if len(doc.Exemplars) != 1 || doc.Exemplars[0].RequestID != "slo-test-001" {
		t.Fatalf("exemplars = %+v, want slo-test-001", doc.Exemplars)
	}

	postResp, err := http.Post(srv.URL+"/slo", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /slo = %d, want 405", postResp.StatusCode)
	}
}
