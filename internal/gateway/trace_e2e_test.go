package gateway

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"blackboxval/internal/cloud"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
)

// TestEndToEndTraceStitch is the three-process waterfall: a traffic
// client posts one sampled batch through a gateway to a traced model
// backend, the shadow tap feeds a traced monitor, each "process" writes
// its own span journal, and ppm-diagnose's stitcher must reassemble
// one connected waterfall — gateway relay, backend predict and shadow
// observe all under the gateway's request span.
func TestEndToEndTraceStitch(t *testing.T) {
	f := getFixture(t)

	// Backend "process": the model server behind the trace middleware,
	// journaling to its own directory like ppm-serve -trace-dir.
	backendTracer := obs.NewTracer(32)
	backendDir := t.TempDir()
	bj, err := obs.OpenJournal(backendDir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	backendTracer.SetJournal(bj)
	backendHandler := obs.TraceMiddleware(backendTracer, cloud.NewServer(f.model).Handler())

	// Monitor "process": its shadow-observe spans land on a third
	// tracer/journal pair (in ppm-gateway they share the process
	// default; a standalone ppm-monitor journals separately).
	monTracer := obs.NewTracer(32)
	monDir := t.TempDir()
	mj, err := obs.OpenJournal(monDir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	monTracer.SetJournal(mj)
	mon, err := monitor.New(monitor.Config{
		Predictor: f.pred, Validator: f.val, Threshold: 0.05,
		Tracer: monTracer,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Gateway "process".
	gwTracer := obs.NewTracer(32)
	gwDir := t.TempDir()
	gj, err := obs.OpenJournal(gwDir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	gwTracer.SetJournal(gj)
	_, gwSrv := newGateway(t, Config{
		Monitor: mon, Tracer: gwTracer, TraceSampleRate: 1,
	}, backendHandler)

	// Traffic "process": one batch with the deterministic sampled
	// traceparent ppm-traffic would emit for seed 1, batch 0.
	tc := obs.DeriveTraceContext(1, 0, 1)
	if !tc.Sampled() {
		t.Fatal("rate-1 derived context must be sampled")
	}
	body := encodeBatch(t, f.serving)
	req, err := http.NewRequest(http.MethodPost, gwSrv.URL+"/predict_proba", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway returned %d", resp.StatusCode)
	}
	echoed, err := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if err != nil {
		t.Fatalf("gateway did not echo a parseable traceparent: %v", err)
	}
	if echoed.TraceID != tc.TraceID {
		t.Fatalf("echoed trace id %s, sent %s", echoed.TraceID, tc.TraceID)
	}

	// Wait for the shadow tap to feed the monitor, then flush all
	// three journals like a process shutdown would.
	deadline := time.Now().Add(10 * time.Second)
	for mon.Observed() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if mon.Observed() < 1 {
		t.Fatal("shadow batch never reached the monitor")
	}
	for _, j := range []*obs.SpanJournal{bj, mj, gj} {
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Stitch the three on-disk fragments exactly as ppm-diagnose -trace
	// does and require one connected waterfall covering every hop.
	var frags []obs.TraceFragment
	for _, p := range []struct{ service, dir string }{
		{"gateway", gwDir}, {"backend", backendDir}, {"monitor", monDir},
	} {
		spans, err := obs.ReadJournalDir(p.dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(spans) == 0 {
			t.Fatalf("journal for %s is empty", p.service)
		}
		frags = append(frags, obs.TraceFragment{Service: p.service, Spans: spans})
	}
	wf, err := obs.StitchTrace(tc.TraceID.String(), frags)
	if err != nil {
		t.Fatal(err)
	}
	if wf.Roots != 1 {
		t.Fatalf("waterfall has %d roots, want 1 (fragments not stitched)", wf.Roots)
	}
	rows := map[string]obs.WaterfallRow{}
	for _, r := range wf.Rows {
		rows[r.Span.Name] = r
	}
	for span, service := range map[string]string{
		"gateway_request": "gateway",
		"gateway_relay":   "gateway",
		"backend_predict": "backend",
		"monitor_observe": "monitor",
	} {
		row, ok := rows[span]
		if !ok {
			t.Fatalf("span %s missing from stitched waterfall (have %v)", span, names(wf.Rows))
		}
		if row.Service != service {
			t.Fatalf("span %s attributed to %s, want %s", span, row.Service, service)
		}
	}
	// Connectivity: the only root is the gateway request; every other
	// span must sit strictly below it.
	if !rows["gateway_request"].Root || rows["gateway_request"].Depth != 0 {
		t.Fatal("gateway_request should be the root")
	}
	for name, row := range rows {
		if name == "gateway_request" {
			continue
		}
		if row.Root || row.Depth < 1 {
			t.Fatalf("span %s not reachable from the root (depth %d)", name, row.Depth)
		}
	}
	// The markdown rendering carries every hop — the demo's assertion.
	md := wf.Markdown()
	for _, want := range []string{"gateway_relay", "backend_predict", "monitor_observe", tc.TraceID.String()} {
		if !contains(md, want) {
			t.Fatalf("markdown waterfall missing %q", want)
		}
	}
}

func names(rows []obs.WaterfallRow) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, r.Span.Name)
	}
	return out
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
