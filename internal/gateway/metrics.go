package gateway

// The gateway's observability surface, built on the shared telemetry
// registry (internal/obs). The nine metric families and their
// exposition output predate the shared registry and are preserved
// bit-for-bit: same names, HELP text, label names and value
// formatting, so existing scrape configs and the integration tests
// keep working unchanged. Each Gateway owns a private Registry so two
// gateways in one process (tests, multi-backend deployments) never
// share series.

import (
	"net/http"

	"blackboxval/internal/obs"
)

// latencyBuckets are the request-duration histogram bounds in seconds.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Metrics is the gateway's observability surface, rendered at /metrics.
type Metrics struct {
	reg *obs.Registry

	requests           *obs.CounterVec   // gateway_requests_total{outcome=...}
	latency            *obs.HistogramVec // gateway_request_duration_seconds{outcome=...}
	retries            *obs.CounterVec   // gateway_backend_retries_total{reason=...}
	breakerState       *obs.Gauge        // gateway_breaker_state
	breakerTransitions *obs.CounterVec   // gateway_breaker_transitions_total{to=...}
	shadowDepth        *obs.Gauge        // gateway_shadow_queue_depth
	shadowDropped      *obs.CounterVec   // gateway_shadow_batches_total{fate=...}
	estimate           *obs.Gauge        // gateway_estimated_score
	alarm              *obs.Gauge        // gateway_alarm
}

func newMetrics() *Metrics {
	reg := obs.NewRegistry()
	return &Metrics{
		reg: reg,
		requests: reg.CounterVec("gateway_requests_total",
			"Proxied /predict_proba requests by outcome.", "outcome"),
		latency: reg.HistogramVec("gateway_request_duration_seconds",
			"Gateway-side request latency by outcome.", latencyBuckets, "outcome"),
		retries: reg.CounterVec("gateway_backend_retries_total",
			"Backend retry attempts by trigger.", "reason"),
		breakerState: reg.Gauge("gateway_breaker_state",
			"Circuit breaker position (0=closed, 1=half_open, 2=open)."),
		breakerTransitions: reg.CounterVec("gateway_breaker_transitions_total",
			"Circuit breaker state transitions by destination.", "to"),
		shadowDepth: reg.Gauge("gateway_shadow_queue_depth",
			"Batches waiting in the shadow-validation queue."),
		shadowDropped: reg.CounterVec("gateway_shadow_batches_total",
			"Shadow-validation batches by fate (observed, dropped, undecodable).", "fate"),
		estimate: reg.Gauge("gateway_estimated_score",
			"Latest shadow-validation score estimate for the backend model."),
		alarm: reg.Gauge("gateway_alarm",
			"1 while the performance monitor is alarming, else 0."),
	}
}

// Registry exposes the gateway's metric registry, e.g. for binaries
// that register additional families next to the gateway's own.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Handler serves the Prometheus text exposition with the canonical
// content type (shared with every other /metrics in the repository)
// and the monitor endpoints' cache hygiene: a scrape must always see
// live counters, never an intermediary's cached copy.
func (m *Metrics) Handler() http.Handler {
	inner := m.reg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		inner.ServeHTTP(w, r)
	})
}
