package gateway

// This file implements the gateway's Prometheus-text-format metrics.
// The registry is hand-rolled (no client library dependency): a handful
// of counter, gauge and histogram primitives that render
// deterministically sorted exposition text, enough for any
// Prometheus-compatible scraper.

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// latencyBuckets are the request-duration histogram bounds in seconds.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// counterVec is a monotone counter partitioned by one label.
type counterVec struct {
	name, help, label string

	mu   sync.Mutex
	vals map[string]float64
}

func newCounterVec(name, help, label string) *counterVec {
	return &counterVec{name: name, help: help, label: label, vals: map[string]float64{}}
}

func (c *counterVec) Add(labelValue string, delta float64) {
	c.mu.Lock()
	c.vals[labelValue] += delta
	c.mu.Unlock()
}

func (c *counterVec) Get(labelValue string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[labelValue]
}

func (c *counterVec) render(w *renderer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.header(c.name, c.help, "counter")
	for _, lv := range sortedKeys(c.vals) {
		w.sample(c.name, map[string]string{c.label: lv}, c.vals[lv])
	}
}

// gauge is a settable float64 value, optionally backed by a callback so
// the rendered value is always current (e.g. queue depth).
type gauge struct {
	name, help string
	fn         func() float64

	mu  sync.Mutex
	val float64
}

func newGauge(name, help string) *gauge { return &gauge{name: name, help: help} }

func newGaugeFunc(name, help string, fn func() float64) *gauge {
	return &gauge{name: name, help: help, fn: fn}
}

func (g *gauge) Set(v float64) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

func (g *gauge) Get() float64 {
	if g.fn != nil {
		return g.fn()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

func (g *gauge) render(w *renderer) {
	w.header(g.name, g.help, "gauge")
	w.sample(g.name, nil, g.Get())
}

// histogramVec is a cumulative-bucket histogram partitioned by one label.
type histogramVec struct {
	name, help, label string
	bounds            []float64

	mu     sync.Mutex
	series map[string]*histogramSeries
}

type histogramSeries struct {
	counts []uint64
	sum    float64
	count  uint64
}

func newHistogramVec(name, help, label string, bounds []float64) *histogramVec {
	return &histogramVec{name: name, help: help, label: label, bounds: bounds, series: map[string]*histogramSeries{}}
}

func (h *histogramVec) Observe(labelValue string, v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.series[labelValue]
	if s == nil {
		s = &histogramSeries{counts: make([]uint64, len(h.bounds))}
		h.series[labelValue] = s
	}
	for i, bound := range h.bounds {
		if v <= bound {
			s.counts[i]++
		}
	}
	s.sum += v
	s.count++
}

func (h *histogramVec) Count(labelValue string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.series[labelValue]; s != nil {
		return s.count
	}
	return 0
}

func (h *histogramVec) render(w *renderer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w.header(h.name, h.help, "histogram")
	for _, lv := range sortedKeys(h.series) {
		s := h.series[lv]
		for i, bound := range h.bounds {
			w.sample(h.name+"_bucket", map[string]string{h.label: lv, "le": formatFloat(bound)}, float64(s.counts[i]))
		}
		w.sample(h.name+"_bucket", map[string]string{h.label: lv, "le": "+Inf"}, float64(s.count))
		w.sample(h.name+"_sum", map[string]string{h.label: lv}, s.sum)
		w.sample(h.name+"_count", map[string]string{h.label: lv}, float64(s.count))
	}
}

// Metrics is the gateway's observability surface, rendered at /metrics.
type Metrics struct {
	requests           *counterVec   // gateway_requests_total{outcome=...}
	latency            *histogramVec // gateway_request_duration_seconds{outcome=...}
	retries            *counterVec   // gateway_backend_retries_total{reason=...}
	breakerState       *gauge        // gateway_breaker_state
	breakerTransitions *counterVec   // gateway_breaker_transitions_total{to=...}
	shadowDepth        *gauge        // gateway_shadow_queue_depth
	shadowDropped      *counterVec   // gateway_shadow_batches_total{fate=...}
	estimate           *gauge        // gateway_estimated_score
	alarm              *gauge        // gateway_alarm
}

func newMetrics() *Metrics {
	return &Metrics{
		requests: newCounterVec("gateway_requests_total",
			"Proxied /predict_proba requests by outcome.", "outcome"),
		latency: newHistogramVec("gateway_request_duration_seconds",
			"Gateway-side request latency by outcome.", "outcome", latencyBuckets),
		retries: newCounterVec("gateway_backend_retries_total",
			"Backend retry attempts by trigger.", "reason"),
		breakerState: newGauge("gateway_breaker_state",
			"Circuit breaker position (0=closed, 1=half_open, 2=open)."),
		breakerTransitions: newCounterVec("gateway_breaker_transitions_total",
			"Circuit breaker state transitions by destination.", "to"),
		shadowDepth: newGauge("gateway_shadow_queue_depth",
			"Batches waiting in the shadow-validation queue."),
		shadowDropped: newCounterVec("gateway_shadow_batches_total",
			"Shadow-validation batches by fate (observed, dropped, undecodable).", "fate"),
		estimate: newGauge("gateway_estimated_score",
			"Latest shadow-validation score estimate for the backend model."),
		alarm: newGauge("gateway_alarm",
			"1 while the performance monitor is alarming, else 0."),
	}
}

// Handler serves the Prometheus text exposition.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.render(w)
	})
}

func (m *Metrics) render(w http.ResponseWriter) {
	r := &renderer{w: w}
	m.requests.render(r)
	m.latency.render(r)
	m.retries.render(r)
	m.breakerState.render(r)
	m.breakerTransitions.render(r)
	m.shadowDepth.render(r)
	m.shadowDropped.render(r)
	m.estimate.render(r)
	m.alarm.render(r)
}

// renderer writes Prometheus exposition lines.
type renderer struct{ w http.ResponseWriter }

func (r *renderer) header(name, help, typ string) {
	fmt.Fprintf(r.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (r *renderer) sample(name string, labels map[string]string, v float64) {
	fmt.Fprint(r.w, name)
	if len(labels) > 0 {
		fmt.Fprint(r.w, "{")
		for i, k := range sortedKeys(labels) {
			if i > 0 {
				fmt.Fprint(r.w, ",")
			}
			fmt.Fprintf(r.w, "%s=%q", k, labels[k])
		}
		fmt.Fprint(r.w, "}")
	}
	fmt.Fprintf(r.w, " %s\n", formatFloat(v))
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
