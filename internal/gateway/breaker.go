package gateway

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is shed until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is allowed through; its outcome
	// decides whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String renders the state for logs, /status and metric labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive backend failures
	// that trips the breaker open (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before letting a
	// half-open probe through (default 10s).
	Cooldown time.Duration
}

func (c *BreakerConfig) defaults() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
}

// Breaker is a three-state circuit breaker protecting the backend model
// server: closed (healthy), open (shedding load) and half-open (probing
// for recovery). It is safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // test hook

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool

	// onTransition, when set, observes every state change (metrics).
	onTransition func(to BreakerState)
}

// NewBreaker returns a closed breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.defaults()
	return &Breaker{cfg: cfg, now: time.Now}
}

// Allow reports whether a request may proceed. When it returns false the
// caller should shed the request; retryAfter is the remaining cooldown,
// suitable for a Retry-After response header.
func (b *Breaker) Allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		remaining := b.cfg.Cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			return false, remaining
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true, 0
	default: // BreakerHalfOpen
		if b.probing {
			// A probe is already in flight; shed until it resolves.
			return false, b.cfg.Cooldown
		}
		b.probing = true
		return true, 0
	}
}

// Success records a successful backend exchange.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state != BreakerClosed {
		b.probing = false
		b.transition(BreakerClosed)
	}
}

// Failure records a failed backend exchange (transport error or gateway
// bankruptcy after retries).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: back to shedding for a full cooldown.
		b.probing = false
		b.openedAt = b.now()
		b.transition(BreakerOpen)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.openedAt = b.now()
			b.transition(BreakerOpen)
		}
	}
}

// State returns the current breaker position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transition must be called with b.mu held.
func (b *Breaker) transition(to BreakerState) {
	b.state = to
	if b.onTransition != nil {
		b.onTransition(to)
	}
}
