package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blackboxval/internal/cloud"
	"blackboxval/internal/core"
	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/models"
	"blackboxval/internal/monitor"
)

// fixture trains one small black box + predictor + validator shared by
// every integration test in the package.
type fixture struct {
	model   data.Model
	pred    *core.Predictor
	val     *core.Validator
	serving *data.Dataset
}

var (
	fixOnce sync.Once
	fix     fixture
)

func getFixture(t *testing.T) fixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := rand.New(rand.NewSource(1))
		ds := datagen.Income(3000, 1).Balance(rng)
		source, serving := ds.Split(0.7, rng)
		train, test := source.Split(0.6, rng)
		model, err := models.TrainPipeline(train, &models.GBDTClassifier{Trees: 20, Seed: 1}, 64)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := core.TrainPredictor(model, test, core.PredictorConfig{
			Generators:  errorgen.KnownTabular(),
			Repetitions: 40,
			ForestSizes: []int{30},
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		val, err := core.TrainValidator(model, test, core.ValidatorConfig{
			Generators: errorgen.KnownTabular(),
			Threshold:  0.05,
			Batches:    80,
			Seed:       1,
		})
		if err != nil {
			t.Fatal(err)
		}
		fix = fixture{model: model, pred: pred, val: val, serving: serving}
	})
	return fix
}

func newMonitor(t *testing.T, f fixture) *monitor.Monitor {
	t.Helper()
	mon, err := monitor.New(monitor.Config{Predictor: f.pred, Validator: f.val, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return mon
}

// newGateway boots a gateway in front of handler and returns it with
// its test server.
func newGateway(t *testing.T, cfg Config, backend http.Handler) (*Gateway, *httptest.Server) {
	t.Helper()
	backendSrv := httptest.NewServer(backend)
	t.Cleanup(backendSrv.Close)
	cfg.Backend = backendSrv.URL
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	gwSrv := httptest.NewServer(g.Handler())
	t.Cleanup(gwSrv.Close)
	return g, gwSrv
}

func encodeBatch(t *testing.T, ds *data.Dataset) []byte {
	t.Helper()
	body, err := cloud.EncodeRequest(ds)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/predict_proba", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, respBody
}

func waitObserved(t *testing.T, g *Gateway, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.ShadowObserved() < want {
		if time.Now().After(deadline) {
			t.Fatalf("shadow tap observed %d batches, want %d", g.ShadowObserved(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getStatus(t *testing.T, url string) Status {
	t.Helper()
	resp, err := http.Get(url + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func scrapeURL(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parsePrometheus(t, string(body))
}

// TestProxyBitIdentical proves acceptance criterion (a): the gateway
// relays backend responses byte for byte.
func TestProxyBitIdentical(t *testing.T) {
	f := getFixture(t)
	backend := cloud.NewServer(f.model).Handler()
	backendSrv := httptest.NewServer(backend)
	defer backendSrv.Close()

	g, err := New(Config{Backend: backendSrv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gwSrv := httptest.NewServer(g.Handler())
	defer gwSrv.Close()

	body := encodeBatch(t, f.serving)
	directResp, direct := post(t, backendSrv.URL, body)
	gwResp, proxied := post(t, gwSrv.URL, body)

	if gwResp.StatusCode != directResp.StatusCode {
		t.Fatalf("status: gateway %d, direct %d", gwResp.StatusCode, directResp.StatusCode)
	}
	if !bytes.Equal(direct, proxied) {
		t.Fatalf("response bodies differ: direct %d bytes, proxied %d bytes", len(direct), len(proxied))
	}
	if got, want := gwResp.Header.Get("Content-Type"), directResp.Header.Get("Content-Type"); got != want {
		t.Fatalf("content type: gateway %q, direct %q", got, want)
	}
	// Errors relay bit-identically too.
	directResp, direct = post(t, backendSrv.URL, []byte("{nope"))
	gwResp, proxied = post(t, gwSrv.URL, []byte("{nope"))
	if gwResp.StatusCode != directResp.StatusCode || !bytes.Equal(direct, proxied) {
		t.Fatalf("bad-request relay: gateway %d %q, direct %d %q", gwResp.StatusCode, proxied, directResp.StatusCode, direct)
	}
}

// TestBreakerTripsAndRecovers proves acceptance criterion (b): a backend
// outage trips the breaker to 503/Retry-After; a successful probe after
// the cooldown closes it again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	f := getFixture(t)
	real := cloud.NewServer(f.model).Handler()
	var down atomic.Bool
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "backend restarting", http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	})
	g, gwSrv := newGateway(t, Config{
		MaxRetries:     1,
		RetryBaseDelay: time.Millisecond,
		RequestTimeout: 5 * time.Second,
		Breaker:        BreakerConfig{FailureThreshold: 2, Cooldown: 150 * time.Millisecond},
	}, backend)

	body := encodeBatch(t, f.serving)

	// Healthy path first.
	if resp, _ := post(t, gwSrv.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy proxy status = %d", resp.StatusCode)
	}

	// Outage: two failed exchanges trip the breaker.
	down.Store(true)
	for i := 0; i < 2; i++ {
		if resp, _ := post(t, gwSrv.URL, body); resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("outage request %d status = %d, want 502", i, resp.StatusCode)
		}
	}
	if g.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", g.Breaker().State())
	}

	// While open the gateway sheds load without touching the backend.
	resp, _ := post(t, gwSrv.URL, body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", resp.StatusCode)
	}
	retryAfter, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retryAfter < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if st := getStatus(t, gwSrv.URL); st.BreakerState != "open" {
		t.Fatalf("/status breaker_state = %q, want open", st.BreakerState)
	}

	// Recovery: backend returns, the cooldown elapses, the probe succeeds.
	down.Store(false)
	time.Sleep(200 * time.Millisecond)
	if resp, _ := post(t, gwSrv.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status = %d, want 200", resp.StatusCode)
	}
	if g.Breaker().State() != BreakerClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", g.Breaker().State())
	}
	if resp, _ := post(t, gwSrv.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status = %d", resp.StatusCode)
	}

	s := scrapeURL(t, gwSrv.URL)
	if s[`gateway_breaker_transitions_total{to="open"}`] < 1 {
		t.Fatal("breaker open transition not counted")
	}
	if s[`gateway_breaker_transitions_total{to="closed"}`] < 1 {
		t.Fatal("breaker close transition not counted")
	}
	if s[`gateway_requests_total{outcome="breaker_open"}`] != 1 {
		t.Fatalf("shed requests = %v, want 1", s[`gateway_requests_total{outcome="breaker_open"}`])
	}
	if s[`gateway_backend_retries_total{reason="upstream_transient"}`] < 1 {
		t.Fatal("transient retries not counted")
	}
}

// TestShadowValidationFlipsHealthz proves acceptance criterion (c): an
// error-corrupted traffic stream drives the monitor's estimate down and
// turns /healthz into a 503.
func TestShadowValidationFlipsHealthz(t *testing.T) {
	f := getFixture(t)
	mon := newMonitor(t, f)
	g, gwSrv := newGateway(t, Config{Monitor: mon}, cloud.NewServer(f.model).Handler())

	healthz := func() int {
		resp, err := http.Get(gwSrv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Clean traffic: estimate healthy, healthz green.
	if resp, _ := post(t, gwSrv.URL, encodeBatch(t, f.serving)); resp.StatusCode != http.StatusOK {
		t.Fatal("clean batch not proxied")
	}
	waitObserved(t, g, 1)
	if code := healthz(); code != http.StatusOK {
		t.Fatalf("healthz on clean traffic = %d", code)
	}

	// Catastrophically corrupted traffic (same recipe as the monitor's
	// own alarm tests) must flip the health signal.
	rng := rand.New(rand.NewSource(2))
	broken := errorgen.Scaling{}.Corrupt(f.serving, 0.95, rng)
	if resp, _ := post(t, gwSrv.URL, encodeBatch(t, broken)); resp.StatusCode != http.StatusOK {
		t.Fatal("corrupted batch not proxied")
	}
	waitObserved(t, g, 2)
	if !mon.Alarming() {
		t.Fatal("monitor did not alarm on corrupted traffic")
	}
	if code := healthz(); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz under alarm = %d, want 503", code)
	}
	st := getStatus(t, gwSrv.URL)
	if !st.Alarming || st.Monitor == nil || st.Monitor.Batches != 2 {
		t.Fatalf("/status = %+v", st)
	}
	if st.Monitor.LastEstimate >= st.AlarmLine {
		t.Fatalf("estimate %v not below alarm line %v", st.Monitor.LastEstimate, st.AlarmLine)
	}

	s := scrapeURL(t, gwSrv.URL)
	if s[`gateway_alarm`] != 1 {
		t.Fatalf("gateway_alarm = %v, want 1", s[`gateway_alarm`])
	}
	if est := s[`gateway_estimated_score`]; est >= st.AlarmLine {
		t.Fatalf("gateway_estimated_score = %v, want < %v", est, st.AlarmLine)
	}
	if s[`gateway_shadow_batches_total{fate="observed"}`] != 2 {
		t.Fatalf("observed batches = %v, want 2", s[`gateway_shadow_batches_total{fate="observed"}`])
	}

	// The monitor dashboard is mounted under /monitor/.
	resp, err := http.Get(gwSrv.URL + "/monitor/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var summary monitor.Summary
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	if summary.Batches != 2 {
		t.Fatalf("mounted dashboard summary = %+v", summary)
	}
}

// TestMetricsMatchTraffic proves acceptance criterion (d): the scrape
// parses as Prometheus text and the counters match observed traffic.
func TestMetricsMatchTraffic(t *testing.T) {
	f := getFixture(t)
	mon := newMonitor(t, f)
	g, gwSrv := newGateway(t, Config{Monitor: mon}, cloud.NewServer(f.model).Handler())

	const okRequests = 3
	body := encodeBatch(t, f.serving)
	for i := 0; i < okRequests; i++ {
		if resp, _ := post(t, gwSrv.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d failed", i)
		}
	}
	// One request the backend rejects (still proxied, not shadowed).
	if resp, _ := post(t, gwSrv.URL, []byte("{}")); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("backend should reject the empty request")
	}
	// One request the gateway itself rejects.
	resp, err := http.Get(gwSrv.URL + "/predict_proba")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitObserved(t, g, okRequests)

	s := scrapeURL(t, gwSrv.URL)
	if got := s[`gateway_requests_total{outcome="ok"}`]; got != okRequests {
		t.Fatalf(`requests{ok} = %v, want %d`, got, okRequests)
	}
	if got := s[`gateway_requests_total{outcome="upstream_4xx"}`]; got != 1 {
		t.Fatalf(`requests{upstream_4xx} = %v, want 1`, got)
	}
	if got := s[`gateway_requests_total{outcome="bad_request"}`]; got != 1 {
		t.Fatalf(`requests{bad_request} = %v, want 1`, got)
	}
	if got := s[`gateway_request_duration_seconds_count{outcome="ok"}`]; got != okRequests {
		t.Fatalf(`latency count{ok} = %v, want %d`, got, okRequests)
	}
	if got := s[`gateway_shadow_batches_total{fate="observed"}`]; got != okRequests {
		t.Fatalf(`shadow observed = %v, want %d`, got, okRequests)
	}
	if got := s[`gateway_breaker_state`]; got != 0 {
		t.Fatalf("breaker gauge = %v, want 0 (closed)", got)
	}
	if got := s[`gateway_shadow_queue_depth`]; got != 0 {
		t.Fatalf("queue depth = %v, want 0 after drain", got)
	}
	if est := s[`gateway_estimated_score`]; est <= 0 || est > 1 {
		t.Fatalf("estimated score gauge = %v", est)
	}
}

// TestShadowQueueDropsOldest pins the bounded-queue semantics: under
// pressure the tap evicts the oldest batch rather than blocking.
func TestShadowQueueDropsOldest(t *testing.T) {
	// Build the tap without its worker so the queue state is inspectable.
	tap := &shadowTap{
		cap:     2,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		metrics: newMetrics(),
	}
	tap.Enqueue([]byte("a"), "id-a")
	tap.Enqueue([]byte("b"), "id-b")
	tap.Enqueue([]byte("c"), "id-c")
	if tap.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", tap.Depth())
	}
	if got := tap.metrics.shadowDropped.Get("dropped"); got != 1 {
		t.Fatalf("dropped = %v, want 1", got)
	}
	first, _ := tap.pop()
	second, _ := tap.pop()
	if string(first.body) != "b" || string(second.body) != "c" {
		t.Fatalf("queue kept %q,%q — oldest should have been evicted", first.body, second.body)
	}
	if first.requestID != "id-b" || second.requestID != "id-c" {
		t.Fatalf("request ids did not ride along: %q,%q", first.requestID, second.requestID)
	}
	if _, ok := tap.pop(); ok {
		t.Fatal("queue should be empty")
	}
}

// TestGatewayConfigValidation pins New's error paths.
func TestGatewayConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing backend should error")
	}
	g, err := New(Config{Backend: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.ShadowObserved() != 0 {
		t.Fatal("monitor-less gateway should report zero shadow batches")
	}
}
