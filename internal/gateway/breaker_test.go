package gateway

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: threshold, Cooldown: cooldown})
	b.now = clk.now
	return b, clk
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		b.Failure()
		if b.State() != BreakerClosed {
			t.Fatalf("tripped after %d failures, threshold is 3", i+1)
		}
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker should be open after 3 consecutive failures")
	}
	if ok, retryAfter := b.Allow(); ok || retryAfter <= 0 {
		t.Fatalf("open breaker allowed traffic (retryAfter=%v)", retryAfter)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b, _ := newTestBreaker(2, time.Minute)
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures should not trip the breaker")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("not open")
	}
	clk.advance(61 * time.Second)
	ok, _ := b.Allow()
	if !ok || b.State() != BreakerHalfOpen {
		t.Fatalf("cooldown elapsed: want half-open probe, got allow=%v state=%v", ok, b.State())
	}
	// Only one probe at a time.
	if ok, _ := b.Allow(); ok {
		t.Fatal("second concurrent probe allowed")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("probe success should close the breaker")
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("closed breaker must allow traffic")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Failure()
	clk.advance(61 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("probe not allowed")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("probe failure should reopen the breaker")
	}
	// A fresh cooldown applies.
	if ok, _ := b.Allow(); ok {
		t.Fatal("reopened breaker allowed traffic immediately")
	}
	clk.advance(61 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("second probe window not honored")
	}
}

func TestBreakerTransitionCallback(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	var seen []BreakerState
	b.onTransition = func(to BreakerState) { seen = append(seen, to) }
	b.Failure()
	clk.advance(2 * time.Second)
	b.Allow()
	b.Success()
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seen, want)
		}
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" || BreakerHalfOpen.String() != "half_open" {
		t.Fatal("state strings changed: metric labels depend on them")
	}
}
