// Package imgdata implements the image substrate for the image
// classification experiments: fixed-size grayscale image sets with the
// geometric and noise operations (rotation, additive gaussian noise) that
// the paper's image error generators apply.
package imgdata

import (
	"fmt"
	"math"
	"math/rand"
)

// Set is a collection of equally sized grayscale images with pixel values
// in [0,1]. Pixels[i] is the row-major pixel vector of image i.
type Set struct {
	Width, Height int
	Pixels        [][]float64
}

// NewSet returns an empty image set with the given dimensions.
func NewSet(width, height int) *Set {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("imgdata: invalid dimensions %dx%d", width, height))
	}
	return &Set{Width: width, Height: height}
}

// Len returns the number of images.
func (s *Set) Len() int { return len(s.Pixels) }

// PixelCount returns the number of pixels per image.
func (s *Set) PixelCount() int { return s.Width * s.Height }

// Append adds an image. It panics if the pixel count is wrong.
func (s *Set) Append(pixels []float64) {
	if len(pixels) != s.PixelCount() {
		panic(fmt.Sprintf("imgdata: image has %d pixels, want %d", len(pixels), s.PixelCount()))
	}
	s.Pixels = append(s.Pixels, pixels)
}

// At returns the pixel value of image i at (x, y).
func (s *Set) At(i, x, y int) float64 { return s.Pixels[i][y*s.Width+x] }

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := NewSet(s.Width, s.Height)
	out.Pixels = make([][]float64, len(s.Pixels))
	for i, p := range s.Pixels {
		out.Pixels[i] = append([]float64(nil), p...)
	}
	return out
}

// SelectRows returns a new set containing the given images, in order.
func (s *Set) SelectRows(idx []int) *Set {
	out := NewSet(s.Width, s.Height)
	out.Pixels = make([][]float64, len(idx))
	for k, i := range idx {
		out.Pixels[k] = append([]float64(nil), s.Pixels[i]...)
	}
	return out
}

// Clamp clips v into [0,1].
func Clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// AddGaussianNoise adds N(0, sigma²) noise to every pixel of image i,
// clamping the result to [0,1]. This implements the paper's "image noise"
// perturbation.
func (s *Set) AddGaussianNoise(i int, sigma float64, rng *rand.Rand) {
	p := s.Pixels[i]
	for j := range p {
		p[j] = Clamp(p[j] + rng.NormFloat64()*sigma)
	}
}

// Rotate rotates image i by angle radians around its center using
// bilinear interpolation, implementing the paper's "image rotation"
// perturbation. Pixels sampled from outside the source are black.
func (s *Set) Rotate(i int, angle float64) {
	src := s.Pixels[i]
	dst := make([]float64, len(src))
	cx := float64(s.Width-1) / 2
	cy := float64(s.Height-1) / 2
	sin, cos := math.Sin(-angle), math.Cos(-angle)
	for y := 0; y < s.Height; y++ {
		for x := 0; x < s.Width; x++ {
			// Inverse-map the destination pixel into the source image.
			dx := float64(x) - cx
			dy := float64(y) - cy
			sx := cos*dx - sin*dy + cx
			sy := sin*dx + cos*dy + cy
			dst[y*s.Width+x] = s.bilinear(src, sx, sy)
		}
	}
	s.Pixels[i] = dst
}

func (s *Set) bilinear(src []float64, x, y float64) float64 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)
	get := func(xi, yi int) float64 {
		if xi < 0 || xi >= s.Width || yi < 0 || yi >= s.Height {
			return 0
		}
		return src[yi*s.Width+xi]
	}
	top := get(x0, y0)*(1-fx) + get(x0+1, y0)*fx
	bot := get(x0, y0+1)*(1-fx) + get(x0+1, y0+1)*fx
	return top*(1-fy) + bot*fy
}

// Mean returns the mean pixel intensity of image i.
func (s *Set) Mean(i int) float64 {
	sum := 0.0
	for _, v := range s.Pixels[i] {
		sum += v
	}
	return sum / float64(len(s.Pixels[i]))
}
