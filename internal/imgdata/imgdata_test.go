package imgdata

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func constImage(w, h int, v float64) []float64 {
	p := make([]float64, w*h)
	for i := range p {
		p[i] = v
	}
	return p
}

func TestAppendAndAccess(t *testing.T) {
	s := NewSet(4, 3)
	s.Append(constImage(4, 3, 0.5))
	if s.Len() != 1 || s.PixelCount() != 12 {
		t.Fatalf("len=%d pixels=%d", s.Len(), s.PixelCount())
	}
	if s.At(0, 2, 1) != 0.5 {
		t.Fatal("At wrong")
	}
}

func TestAppendWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSet(2, 2).Append([]float64{1, 2, 3})
}

func TestCloneAndSelect(t *testing.T) {
	s := NewSet(2, 2)
	s.Append([]float64{1, 2, 3, 4})
	s.Append([]float64{5, 6, 7, 8})
	c := s.Clone()
	c.Pixels[0][0] = 99
	if s.Pixels[0][0] != 1 {
		t.Fatal("clone aliases pixels")
	}
	sel := s.SelectRows([]int{1, 0, 1})
	if sel.Len() != 3 || sel.Pixels[0][0] != 5 || sel.Pixels[1][0] != 1 {
		t.Fatal("SelectRows wrong")
	}
	sel.Pixels[0][0] = -1
	if s.Pixels[1][0] != 5 {
		t.Fatal("SelectRows aliases pixels")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(-0.5) != 0 || Clamp(1.5) != 1 || Clamp(0.3) != 0.3 {
		t.Fatal("clamp wrong")
	}
}

func TestNoiseKeepsRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet(8, 8)
		img := make([]float64, 64)
		for i := range img {
			img[i] = rng.Float64()
		}
		s.Append(img)
		s.AddGaussianNoise(0, 0.5, rng)
		for _, v := range s.Pixels[0] {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseZeroSigmaIsIdentity(t *testing.T) {
	s := NewSet(3, 3)
	s.Append([]float64{0, .1, .2, .3, .4, .5, .6, .7, .8})
	want := append([]float64(nil), s.Pixels[0]...)
	s.AddGaussianNoise(0, 0, rand.New(rand.NewSource(1)))
	for i, v := range s.Pixels[0] {
		if v != want[i] {
			t.Fatal("sigma=0 noise changed pixels")
		}
	}
}

func TestRotateZeroAngleNearIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSet(10, 10)
	img := make([]float64, 100)
	for i := range img {
		img[i] = rng.Float64()
	}
	s.Append(img)
	want := append([]float64(nil), img...)
	s.Rotate(0, 0)
	for i, v := range s.Pixels[0] {
		if math.Abs(v-want[i]) > 1e-12 {
			t.Fatalf("rotate(0) changed pixel %d: %v -> %v", i, want[i], v)
		}
	}
}

func TestRotateQuarterTurnMovesMass(t *testing.T) {
	// A bright vertical bar becomes a horizontal bar after a 90° turn.
	s := NewSet(11, 11)
	img := make([]float64, 121)
	for y := 0; y < 11; y++ {
		img[y*11+5] = 1 // center column
	}
	s.Append(img)
	s.Rotate(0, math.Pi/2)
	rowSum := 0.0
	for x := 0; x < 11; x++ {
		rowSum += s.At(0, x, 5) // center row should now be bright
	}
	colSum := 0.0
	for y := 0; y < 11; y++ {
		if y == 5 {
			continue
		}
		colSum += s.At(0, 5, y)
	}
	if rowSum < 9 {
		t.Fatalf("center row after 90° rotation too dim: %v", rowSum)
	}
	if colSum > 1 {
		t.Fatalf("original column still bright after rotation: %v", colSum)
	}
}

func TestRotatePreservesApproxMass(t *testing.T) {
	// Small rotations should approximately preserve total intensity of a
	// centered blob.
	s := NewSet(16, 16)
	img := make([]float64, 256)
	for y := 6; y < 10; y++ {
		for x := 6; x < 10; x++ {
			img[y*16+x] = 1
		}
	}
	s.Append(img)
	before := s.Mean(0)
	s.Rotate(0, 0.3)
	after := s.Mean(0)
	if math.Abs(before-after) > 0.01 {
		t.Fatalf("rotation lost mass: %v -> %v", before, after)
	}
}

func TestMean(t *testing.T) {
	s := NewSet(2, 2)
	s.Append([]float64{0, 1, 1, 0})
	if s.Mean(0) != 0.5 {
		t.Fatal("mean wrong")
	}
}
