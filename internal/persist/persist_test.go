package persist

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"blackboxval/internal/core"
	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/linalg"
	"blackboxval/internal/models"
)

func tmpPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func matricesEqual(a, b *linalg.Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestDatasetRoundTripTabular(t *testing.T) {
	ds := datagen.Income(200, 1)
	ds.Frame.Column("age").Num[0] = math.NaN() // missing survives the trip
	ds.Frame.Column("occupation").Str[1] = ""
	path := tmpPath(t, "income.json")
	if err := SaveDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() || len(got.Classes) != 2 {
		t.Fatalf("shape lost: %d rows", got.Len())
	}
	if !math.IsNaN(got.Frame.Column("age").Num[0]) {
		t.Fatal("NaN missing marker lost")
	}
	if got.Frame.Column("occupation").Str[1] != "" {
		t.Fatal("categorical missing marker lost")
	}
	for i := range ds.Labels {
		if got.Labels[i] != ds.Labels[i] {
			t.Fatal("labels differ")
		}
	}
	a := ds.Frame.Column("hours_per_week").Num
	b := got.Frame.Column("hours_per_week").Num
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("numeric values differ")
		}
	}
}

func TestDatasetRoundTripImages(t *testing.T) {
	ds := datagen.Digits(30, 1)
	path := tmpPath(t, "digits.json")
	if err := SaveDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Images.Width != 28 || got.Images.Len() != 30 {
		t.Fatal("image shape lost")
	}
	for i := range ds.Images.Pixels {
		for j := range ds.Images.Pixels[i] {
			if got.Images.Pixels[i][j] != ds.Images.Pixels[i][j] {
				t.Fatal("pixels differ")
			}
		}
	}
}

// pipelineRoundTrip trains a classifier, saves and loads the pipeline and
// checks identical predictions on fresh data.
func pipelineRoundTrip(t *testing.T, clf models.Classifier, train, probe *data.Dataset) {
	t.Helper()
	p, err := models.TrainPipeline(train, clf, 32)
	if err != nil {
		t.Fatal(err)
	}
	path := tmpPath(t, "pipeline.json")
	if err := SavePipeline(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPipeline(path)
	if err != nil {
		t.Fatal(err)
	}
	want := p.PredictProba(probe)
	have := got.PredictProba(probe)
	if !matricesEqual(want, have, 1e-12) {
		t.Fatal("loaded pipeline predicts differently")
	}
	if got.NumClasses() != p.NumClasses() {
		t.Fatal("class count lost")
	}
}

func TestPipelineRoundTripSGD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := datagen.Income(800, 1)
	train, probe := ds.Split(0.7, rng)
	pipelineRoundTrip(t, &models.SGDClassifier{Epochs: 5, Seed: 1}, train, probe)
}

func TestPipelineRoundTripMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := datagen.Heart(800, 2)
	train, probe := ds.Split(0.7, rng)
	pipelineRoundTrip(t, &models.MLPClassifier{Hidden: []int{8, 4}, Epochs: 4, Seed: 1}, train, probe)
}

func TestPipelineRoundTripGBDT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := datagen.Bank(800, 3)
	train, probe := ds.Split(0.7, rng)
	pipelineRoundTrip(t, &models.GBDTClassifier{Trees: 10, Seed: 1}, train, probe)
}

func TestPipelineRoundTripCNN(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training is slow")
	}
	rng := rand.New(rand.NewSource(4))
	ds := datagen.Digits(160, 4)
	train, probe := ds.Split(0.7, rng)
	pipelineRoundTrip(t, &models.CNNClassifier{Epochs: 1, Conv1: 4, Conv2: 8, Dense: 16, Seed: 1}, train, probe)
}

func TestPredictorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := datagen.Income(1500, 5).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 8, Seed: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := core.TrainPredictor(model, test, core.PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 10,
		ForestSizes: []int{20},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := tmpPath(t, "predictor.json")
	if err := SavePredictor(path, pred); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPredictor(path, model)
	if err != nil {
		t.Fatal(err)
	}
	proba := model.PredictProba(serving)
	if got.EstimateFromProba(proba) != pred.EstimateFromProba(proba) {
		t.Fatal("loaded predictor estimates differently")
	}
	if got.Estimate(serving) != pred.Estimate(serving) {
		t.Fatal("attached model path differs")
	}
	if got.TestScore() != pred.TestScore() {
		t.Fatal("test score lost")
	}
}

func TestPredictorRoundTripAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := datagen.Income(1200, 6).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 8, Seed: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := core.TrainPredictor(model, test, core.PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 8,
		ForestSizes: []int{20},
		Score:       core.AUCScore,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := tmpPath(t, "predictor-auc.json")
	if err := SavePredictor(path, pred); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPredictor(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	proba := model.PredictProba(serving)
	if got.EstimateFromProba(proba) != pred.EstimateFromProba(proba) {
		t.Fatal("AUC predictor round trip failed")
	}
}

func TestValidatorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := datagen.Income(2000, 7).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 8, Seed: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	val, err := core.TrainValidator(model, test, core.ValidatorConfig{
		Generators: errorgen.KnownTabular(),
		Threshold:  0.05,
		Batches:    60,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := tmpPath(t, "validator.json")
	if err := SaveValidator(path, val); err != nil {
		t.Fatal(err)
	}
	got, err := LoadValidator(path, model)
	if err != nil {
		t.Fatal(err)
	}
	proba := model.PredictProba(serving)
	if got.ViolationFromProba(proba) != val.ViolationFromProba(proba) {
		t.Fatal("loaded validator decides differently")
	}
	if got.ViolationProbability(proba) != val.ViolationProbability(proba) {
		t.Fatal("loaded validator probability differs")
	}
	if got.Threshold() != val.Threshold() || got.TestScore() != val.TestScore() {
		t.Fatal("validator metadata lost")
	}
	if got.Violation(serving) != val.Violation(serving) {
		t.Fatal("attached model path differs")
	}
}

func TestKindMismatchRejected(t *testing.T) {
	ds := datagen.Income(50, 8)
	path := tmpPath(t, "dataset.json")
	if err := SaveDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPipeline(path); err == nil {
		t.Fatal("loading a dataset as a pipeline should fail")
	}
}

func TestCorruptFileRejected(t *testing.T) {
	path := tmpPath(t, "garbage.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(path); err == nil {
		t.Fatal("garbage file should fail to load")
	}
	if _, err := LoadDataset(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should fail to load")
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	path := tmpPath(t, "future.json")
	if err := os.WriteFile(path, []byte(`{"kind":"dataset","version":999,"payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(path); err == nil {
		t.Fatal("future version should fail to load")
	}
}

func TestPredictorIntervalSurvivesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := datagen.Income(1500, 9).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 8, Seed: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := core.TrainPredictor(model, test, core.PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 12,
		ForestSizes: []int{20},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := tmpPath(t, "predictor-interval.json")
	if err := SavePredictor(path, pred); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPredictor(path, model)
	if err != nil {
		t.Fatal(err)
	}
	proba := model.PredictProba(serving)
	wantEst, wantLo, wantHi := pred.EstimateInterval(proba, 0.1)
	gotEst, gotLo, gotHi := got.EstimateInterval(proba, 0.1)
	if wantEst != gotEst || wantLo != gotLo || wantHi != gotHi {
		t.Fatalf("interval changed over round trip: [%v %v %v] vs [%v %v %v]",
			wantLo, wantEst, wantHi, gotLo, gotEst, gotHi)
	}
	if wantLo == wantHi {
		t.Fatal("interval should be non-degenerate with calibration data")
	}
}
