// Package persist stores and loads the system's trained artifacts —
// datasets, black box pipelines, performance predictors and validators —
// as versioned JSON files, mirroring the serialized datasets and models
// the paper publishes with its experiments. Every artifact is wrapped in
// an envelope carrying a kind tag and format version, so files are
// self-describing and loading the wrong artifact kind fails loudly.
package persist

import (
	"encoding/json"
	"fmt"
	"os"

	"blackboxval/internal/core"
	"blackboxval/internal/data"
	"blackboxval/internal/models"
)

// Version is the current on-disk format version.
const Version = 1

// Artifact kinds.
const (
	KindDataset   = "dataset"
	KindPipeline  = "pipeline"
	KindPredictor = "predictor"
	KindValidator = "validator"
)

// envelope wraps every serialized artifact.
type envelope struct {
	Kind    string          `json:"kind"`
	Version int             `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

func save(path, kind string, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("persist: encoding %s: %w", kind, err)
	}
	env, err := json.Marshal(envelope{Kind: kind, Version: Version, Payload: body})
	if err != nil {
		return fmt.Errorf("persist: encoding envelope: %w", err)
	}
	if err := os.WriteFile(path, env, 0o644); err != nil {
		return fmt.Errorf("persist: writing %s: %w", path, err)
	}
	return nil
}

func load(path, kind string, payload any) error {
	body, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("persist: reading %s: %w", path, err)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return fmt.Errorf("persist: decoding envelope of %s: %w", path, err)
	}
	if env.Kind != kind {
		return fmt.Errorf("persist: %s holds a %q artifact, want %q", path, env.Kind, kind)
	}
	if env.Version != Version {
		return fmt.Errorf("persist: %s has format version %d, this build reads %d", path, env.Version, Version)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return fmt.Errorf("persist: decoding %s payload: %w", kind, err)
	}
	return nil
}

// SaveDataset writes a labeled dataset to path.
func SaveDataset(path string, ds *data.Dataset) error { return save(path, KindDataset, ds) }

// LoadDataset reads a labeled dataset from path.
func LoadDataset(path string) (*data.Dataset, error) {
	ds := &data.Dataset{}
	if err := load(path, KindDataset, ds); err != nil {
		return nil, err
	}
	return ds, nil
}

// SavePipeline writes a trained black box pipeline (feature map +
// classifier) to path.
func SavePipeline(path string, p *models.Pipeline) error { return save(path, KindPipeline, p) }

// LoadPipeline reads a trained black box pipeline from path.
func LoadPipeline(path string) (*models.Pipeline, error) {
	p := &models.Pipeline{}
	if err := load(path, KindPipeline, p); err != nil {
		return nil, err
	}
	return p, nil
}

// SavePredictor writes a trained performance predictor to path. The black
// box model is not stored; re-attach it after loading.
func SavePredictor(path string, p *core.Predictor) error { return save(path, KindPredictor, p) }

// LoadPredictor reads a performance predictor from path and attaches the
// given black box model (pass nil to attach later; EstimateFromProba
// works without a model).
func LoadPredictor(path string, model data.Model) (*core.Predictor, error) {
	p := &core.Predictor{}
	if err := load(path, KindPredictor, p); err != nil {
		return nil, err
	}
	if model != nil {
		p.AttachModel(model)
	}
	return p, nil
}

// SaveValidator writes a trained performance validator to path. The black
// box model is not stored; re-attach it after loading.
func SaveValidator(path string, v *core.Validator) error { return save(path, KindValidator, v) }

// LoadValidator reads a performance validator from path and attaches the
// given black box model (pass nil to attach later; ViolationFromProba
// works without a model).
func LoadValidator(path string, model data.Model) (*core.Validator, error) {
	v := &core.Validator{}
	if err := load(path, KindValidator, v); err != nil {
		return nil, err
	}
	if model != nil {
		v.AttachModel(model)
	}
	return v, nil
}
