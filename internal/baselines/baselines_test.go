package baselines

import (
	"math/rand"
	"testing"

	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/linalg"
	"blackboxval/internal/models"
)

func splits(t *testing.T, seed int64) (train, test, serving *data.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := datagen.Income(3000, seed)
	source, serving := ds.Split(0.7, rng)
	train, test = source.Split(0.6, rng)
	return train, test, serving
}

func blackBox(t *testing.T, train *data.Dataset) data.Model {
	t.Helper()
	m, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 10, Seed: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRELNoAlarmOnCleanData(t *testing.T) {
	_, test, serving := splits(t, 1)
	rel := NewREL(test)
	if !rel.Applicable() {
		t.Fatal("REL should apply to tabular data")
	}
	if rel.Violation(serving) {
		t.Fatal("REL alarmed on i.i.d. clean serving data")
	}
}

func TestRELDetectsScaling(t *testing.T) {
	_, test, serving := splits(t, 2)
	rel := NewREL(test)
	corrupted := errorgen.Scaling{}.Corrupt(serving, 0.8, rand.New(rand.NewSource(3)))
	if !rel.Violation(corrupted) {
		t.Fatal("REL missed heavy scaling of raw columns")
	}
}

func TestRELDetectsMissingValues(t *testing.T) {
	_, test, serving := splits(t, 4)
	rel := NewREL(test)
	corrupted := errorgen.MissingValues{}.Corrupt(serving, 0.6, rand.New(rand.NewSource(5)))
	if !rel.Violation(corrupted) {
		t.Fatal("REL missed massive categorical missingness")
	}
}

func TestRELNotApplicableToImages(t *testing.T) {
	imgs := datagen.Digits(50, 1)
	rel := NewREL(imgs)
	if rel.Applicable() {
		t.Fatal("REL should not be applicable to image data")
	}
	if rel.Violation(imgs) {
		t.Fatal("inapplicable REL must not alarm")
	}
}

func TestBBSENoAlarmOnCleanData(t *testing.T) {
	train, test, serving := splits(t, 6)
	model := blackBox(t, train)
	bbse := NewBBSE(model, model.PredictProba(test))
	if bbse.Violation(serving) {
		t.Fatal("BBSE alarmed on clean serving data")
	}
}

func TestBBSEDetectsOutputShift(t *testing.T) {
	train, test, serving := splits(t, 7)
	model := blackBox(t, train)
	bbse := NewBBSE(model, model.PredictProba(test))
	corrupted := errorgen.Scaling{}.Corrupt(serving, 0.9, rand.New(rand.NewSource(8)))
	if !bbse.Violation(corrupted) {
		t.Fatal("BBSE missed a shift that saturates the model outputs")
	}
}

func TestBBSEhDetectsClassCountShift(t *testing.T) {
	train, test, _ := splits(t, 9)
	model := blackBox(t, train)
	bbseh := NewBBSEh(model, model.PredictProba(test))
	// Synthetic outputs: everything predicted class 0.
	skewed := linalg.NewMatrix(500, 2)
	for i := 0; i < 500; i++ {
		skewed.Set(i, 0, 0.9)
		skewed.Set(i, 1, 0.1)
	}
	if !bbseh.ViolationFromProba(skewed) {
		t.Fatal("BBSEh missed a total class-count shift")
	}
}

func TestBBSEhNoAlarmOnCleanData(t *testing.T) {
	train, test, serving := splits(t, 10)
	model := blackBox(t, train)
	bbseh := NewBBSEh(model, model.PredictProba(test))
	if bbseh.Violation(serving) {
		t.Fatal("BBSEh alarmed on clean serving data")
	}
}

func TestDetectorNames(t *testing.T) {
	_, test, _ := splits(t, 11)
	if NewREL(test).Name() != "REL" {
		t.Fatal("REL name")
	}
	train, test2, _ := splits(t, 12)
	model := blackBox(t, train)
	out := model.PredictProba(test2)
	if NewBBSE(model, out).Name() != "BBSE" || NewBBSEh(model, out).Name() != "BBSE-h" {
		t.Fatal("BBSE names")
	}
}

func TestCategoryCountsAlignment(t *testing.T) {
	ref, srv := categoryCounts([]string{"a", "b", "a"}, []string{"b", "c"})
	if len(ref) != 3 || len(srv) != 3 {
		t.Fatalf("union size wrong: %v %v", ref, srv)
	}
	if ref[0] != 2 || ref[1] != 1 || ref[2] != 0 {
		t.Fatalf("ref counts = %v", ref)
	}
	if srv[0] != 0 || srv[1] != 1 || srv[2] != 1 {
		t.Fatalf("srv counts = %v", srv)
	}
}

// scaleColumn multiplies a fraction of one numeric column by 1000,
// leaving every other column untouched — the targeted corruption the
// incident flight recorder must attribute back to that column.
func scaleColumn(ds *data.Dataset, column string, fraction float64, seed int64) *data.Dataset {
	out := ds.Clone()
	col := out.Frame.Column(column)
	rng := rand.New(rand.NewSource(seed))
	for i, v := range col.Num {
		if rng.Float64() < fraction {
			col.Num[i] = v * 1000
		}
	}
	return out
}

func TestAttributeRanksCorruptedColumnFirst(t *testing.T) {
	_, test, serving := splits(t, 11)
	rel := NewREL(test)

	atts, alpha := rel.Attribute(scaleColumn(serving, "age", 0.8, 12))
	if len(atts) == 0 {
		t.Fatal("no attributions for tabular serving data")
	}
	if want := Alpha / float64(len(atts)); alpha != want {
		t.Fatalf("corrected alpha = %v, want Bonferroni %v", alpha, want)
	}
	if atts[0].Column != "age" {
		t.Fatalf("top attribution = %q, want corrupted column age (full ranking: %+v)", atts[0].Column, atts)
	}
	if !atts[0].Rejected || atts[0].Test != "ks" || atts[0].Kind != "numeric" {
		t.Fatalf("top attribution not a rejected numeric KS result: %+v", atts[0])
	}
	if atts[0].PValue >= alpha {
		t.Fatalf("top p-value %v not under corrected alpha %v", atts[0].PValue, alpha)
	}
	// Ranking and Violation must agree: any rejection means violation.
	if !rel.Violation(scaleColumn(serving, "age", 0.8, 12)) {
		t.Fatal("Violation disagrees with a rejected attribution")
	}
}

func TestAttributeCleanServingAcceptsAllColumns(t *testing.T) {
	_, test, serving := splits(t, 13)
	rel := NewREL(test)
	atts, _ := rel.Attribute(serving)
	for _, a := range atts {
		if a.Rejected {
			t.Fatalf("clean i.i.d. serving data rejected column %+v", a)
		}
	}
}

func TestAttributeInapplicable(t *testing.T) {
	imgs := datagen.Digits(40, 2)
	rel := NewREL(imgs)
	if atts, alpha := rel.Attribute(imgs); atts != nil || alpha != Alpha {
		t.Fatalf("inapplicable REL: atts=%v alpha=%v, want nil and uncorrected Alpha", atts, alpha)
	}
}

func TestPredictedClassCounts(t *testing.T) {
	proba := linalg.NewMatrix(4, 2)
	for i, cls := range []int{0, 1, 1, 1} {
		proba.Set(i, cls, 0.9)
		proba.Set(i, 1-cls, 0.1)
	}
	counts := PredictedClassCounts(proba)
	if len(counts) != 2 || counts[0] != 1 || counts[1] != 3 {
		t.Fatalf("PredictedClassCounts = %v, want [1 3]", counts)
	}
}
