// Package baselines implements the three task-independent dataset shift
// detection methods the paper compares against (Section 6.2):
//
//   - REL: univariate shift tests on the raw input columns
//     (Kolmogorov–Smirnov for numeric, chi-squared for categorical),
//     with Bonferroni correction across tests.
//   - BBSE: black box shift detection on assigned class probabilities
//     (Lipton et al.), a KS test on each softmax output dimension.
//   - BBSEh: black box shift detection on hard predictions (Rabanser et
//     al.), a chi-squared test on predicted class counts.
//
// All three follow the paper's protocol of comparing the test p-value to
// 0.05. They answer the same question as core.Validator — "should we
// raise an alarm on this serving batch?" — but without any notion of how
// much the score actually drops.
package baselines

import (
	"math"
	"sort"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
	"blackboxval/internal/linalg"
	"blackboxval/internal/stats"
)

// Alpha is the significance level used for all baseline tests, following
// the paper's protocol.
const Alpha = 0.05

// Detector raises alarms on serving batches it considers shifted.
type Detector interface {
	// Name identifies the baseline.
	Name() string
	// Violation reports whether the detector raises an alarm for the
	// serving batch.
	Violation(serving *data.Dataset) bool
}

// REL detects shift on the raw relational input data, independent of the
// model: a KS test per numeric column and a chi-squared test per
// categorical column against the retained training-time sample, with
// Bonferroni correction for the number of tests.
type REL struct {
	reference *data.Dataset
	numTests  int
}

// NewREL builds the baseline from a reference sample of clean data (the
// held-out test set).
func NewREL(reference *data.Dataset) *REL {
	r := &REL{reference: reference}
	if reference.Tabular() {
		r.numTests = len(reference.Frame.NamesOfKind(frame.Numeric)) +
			len(reference.Frame.NamesOfKind(frame.Categorical))
	}
	return r
}

// Name implements Detector.
func (r *REL) Name() string { return "REL" }

// Applicable reports whether the baseline can run at all: REL needs raw
// relational columns and is not applicable to image data (as the paper
// notes for the auto-keras experiment).
func (r *REL) Applicable() bool { return r.reference.Tabular() && r.numTests > 0 }

// Violation implements Detector.
func (r *REL) Violation(serving *data.Dataset) bool {
	atts, _ := r.Attribute(serving)
	for _, a := range atts {
		if a.Rejected {
			return true
		}
	}
	return false
}

// ColumnAttribution is one row of REL's per-column evidence: which test
// ran, how strong the shift signal is, and whether it survives the
// Bonferroni-corrected significance level. It is the unit of ranked
// drift attribution consumed by incident bundles and reports.
type ColumnAttribution struct {
	Column    string  `json:"column"`
	Kind      string  `json:"kind"` // "numeric" or "categorical"
	Test      string  `json:"test"` // "ks" or "chi2"
	Statistic float64 `json:"statistic"`
	PValue    float64 `json:"p_value"`
	Rejected  bool    `json:"rejected"`
	// MissingDelta is the serving-minus-reference missing rate for
	// numeric columns (an exploded missingness rate counts as shift
	// even when the observed values are identically distributed).
	MissingDelta float64 `json:"missing_delta,omitempty"`
}

// Attribute runs REL's per-column loop against a serving batch and
// returns every column's test result ranked most-suspicious first
// (rejected columns before accepted ones, then ascending p-value,
// descending statistic, column name as the final deterministic
// tie-break), plus the Bonferroni-corrected alpha the rejections were
// judged at. Violation is exactly "any attribution rejected"; the
// incident flight recorder uses the full ranking to name the columns
// that drifted.
func (r *REL) Attribute(serving *data.Dataset) ([]ColumnAttribution, float64) {
	if !r.Applicable() || !serving.Tabular() {
		return nil, Alpha
	}
	alpha := stats.BonferroniAlpha(Alpha, r.numTests)
	var out []ColumnAttribution
	for _, name := range r.reference.Frame.NamesOfKind(frame.Numeric) {
		refRaw := r.reference.Frame.Column(name).Num
		srvRaw := serving.Frame.Column(name).Num
		res := stats.KolmogorovSmirnov(dropNaN(refRaw), dropNaN(srvRaw))
		out = append(out, ColumnAttribution{
			Column:       name,
			Kind:         "numeric",
			Test:         "ks",
			Statistic:    res.Statistic,
			PValue:       res.PValue,
			Rejected:     res.Rejected(alpha) || missingRateJump(refRaw, srvRaw),
			MissingDelta: missingRate(srvRaw) - missingRate(refRaw),
		})
	}
	for _, name := range r.reference.Frame.NamesOfKind(frame.Categorical) {
		refCounts, srvCounts := categoryCounts(
			r.reference.Frame.Column(name).Str, serving.Frame.Column(name).Str)
		res := stats.ChiSquareCounts(refCounts, srvCounts)
		out = append(out, ColumnAttribution{
			Column:    name,
			Kind:      "categorical",
			Test:      "chi2",
			Statistic: res.Statistic,
			PValue:    res.PValue,
			Rejected:  res.Rejected(alpha),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rejected != b.Rejected {
			return a.Rejected
		}
		if a.PValue != b.PValue {
			return a.PValue < b.PValue
		}
		if a.Statistic != b.Statistic {
			return a.Statistic > b.Statistic
		}
		return a.Column < b.Column
	})
	return out, alpha
}

func dropNaN(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

func missingRateJump(ref, srv []float64) bool {
	refMiss := missingRate(ref)
	srvMiss := missingRate(srv)
	return srvMiss > refMiss+0.05
}

func missingRate(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	miss := 0
	for _, v := range xs {
		if math.IsNaN(v) {
			miss++
		}
	}
	return float64(miss) / float64(len(xs))
}

// categoryCounts aligns the category count vectors of two string columns
// over the union of observed values (missing "" included as a category).
func categoryCounts(ref, srv []string) (refCounts, srvCounts []float64) {
	index := map[string]int{}
	add := func(vals []string) {
		for _, v := range vals {
			if _, ok := index[v]; !ok {
				index[v] = len(index)
			}
		}
	}
	add(ref)
	add(srv)
	refCounts = make([]float64, len(index))
	srvCounts = make([]float64, len(index))
	for _, v := range ref {
		refCounts[index[v]]++
	}
	for _, v := range srv {
		srvCounts[index[v]]++
	}
	return refCounts, srvCounts
}

// BBSE detects shift on the model's soft outputs: a KS test per softmax
// dimension between the retained test outputs and the serving outputs,
// Bonferroni-corrected across classes.
type BBSE struct {
	model       data.Model
	testOutputs *linalg.Matrix
}

// NewBBSE builds the baseline from the model and its retained outputs on
// the clean test set.
func NewBBSE(model data.Model, testOutputs *linalg.Matrix) *BBSE {
	return &BBSE{model: model, testOutputs: testOutputs}
}

// Name implements Detector.
func (b *BBSE) Name() string { return "BBSE" }

// Violation implements Detector.
func (b *BBSE) Violation(serving *data.Dataset) bool {
	return b.ViolationFromProba(b.model.PredictProba(serving))
}

// ViolationFromProba applies the test to precomputed serving outputs.
func (b *BBSE) ViolationFromProba(proba *linalg.Matrix) bool {
	alpha := stats.BonferroniAlpha(Alpha, b.testOutputs.Cols)
	for c := 0; c < b.testOutputs.Cols; c++ {
		if stats.KolmogorovSmirnov(b.testOutputs.Col(c), proba.Col(c)).Rejected(alpha) {
			return true
		}
	}
	return false
}

// BBSEh detects shift on the model's hard predictions: a chi-squared test
// between the predicted-class counts on test and serving data.
type BBSEh struct {
	model      data.Model
	testCounts []float64
}

// NewBBSEh builds the baseline from the model and its retained outputs on
// the clean test set.
func NewBBSEh(model data.Model, testOutputs *linalg.Matrix) *BBSEh {
	return &BBSEh{model: model, testCounts: classCounts(testOutputs)}
}

// Name implements Detector.
func (b *BBSEh) Name() string { return "BBSE-h" }

// Violation implements Detector.
func (b *BBSEh) Violation(serving *data.Dataset) bool {
	return b.ViolationFromProba(b.model.PredictProba(serving))
}

// ViolationFromProba applies the test to precomputed serving outputs.
func (b *BBSEh) ViolationFromProba(proba *linalg.Matrix) bool {
	return stats.ChiSquareCounts(b.testCounts, classCounts(proba)).Rejected(Alpha)
}

func classCounts(proba *linalg.Matrix) []float64 {
	counts := make([]float64, proba.Cols)
	for i := 0; i < proba.Rows; i++ {
		counts[linalg.ArgmaxRow(proba.Row(i))]++
	}
	return counts
}

// PredictedClassCounts histograms the argmax predictions of a
// probability matrix — the statistic BBSEh tests on. Exported so the
// incident flight recorder can report predicted-class histogram shift
// with exactly the same counting rule as the baseline.
func PredictedClassCounts(proba *linalg.Matrix) []float64 { return classCounts(proba) }
