package models

import (
	"math"
	"math/rand"
	"testing"

	"blackboxval/internal/linalg"
)

// blobs generates a 2-class gaussian-blob classification problem.
func blobs(n int, sep float64, seed int64) (*linalg.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := linalg.NewMatrix(n, 4)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(2)
		y[i] = c
		shift := sep * float64(2*c-1)
		for j := 0; j < 4; j++ {
			X.Set(i, j, rng.NormFloat64()+shift)
		}
	}
	return X, y
}

func checkProba(t *testing.T, proba *linalg.Matrix) {
	t.Helper()
	for i := 0; i < proba.Rows; i++ {
		sum := 0.0
		for _, v := range proba.Row(i) {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("invalid probability %v in row %d", v, i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func trainAndScore(t *testing.T, clf Classifier, sep float64) float64 {
	t.Helper()
	Xtr, ytr := blobs(600, sep, 1)
	Xte, yte := blobs(300, sep, 2)
	if err := clf.Fit(Xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	proba := clf.PredictProba(Xte)
	checkProba(t, proba)
	return Accuracy(proba, yte)
}

func TestSGDClassifierLearnsBlobs(t *testing.T) {
	acc := trainAndScore(t, &SGDClassifier{Seed: 1}, 1.5)
	if acc < 0.95 {
		t.Fatalf("lr accuracy = %v, want >= 0.95", acc)
	}
}

func TestSGDClassifierL1(t *testing.T) {
	acc := trainAndScore(t, &SGDClassifier{Penalty: L1, Lambda: 1e-3, Seed: 1}, 1.5)
	if acc < 0.9 {
		t.Fatalf("L1 lr accuracy = %v", acc)
	}
}

func TestSGDClassifierL1DrivesNoiseWeightsToZero(t *testing.T) {
	// Two informative features and two pure-noise features: under L1 the
	// noise weights should end exactly at zero (this scale-invariance of
	// ignored features is why raw-data drift detection can mislead,
	// per Section 2 of the paper).
	rng := rand.New(rand.NewSource(4))
	n := 800
	X := linalg.NewMatrix(n, 4)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(2)
		y[i] = c
		shift := 2 * float64(2*c-1)
		X.Set(i, 0, rng.NormFloat64()+shift)
		X.Set(i, 1, rng.NormFloat64()+shift)
		X.Set(i, 2, rng.NormFloat64())
		X.Set(i, 3, rng.NormFloat64())
	}
	clf := &SGDClassifier{Penalty: L1, Lambda: 0.1, Seed: 1}
	if err := clf.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for f := 2; f < 4; f++ {
		for _, w := range clf.weights.Row(f) {
			if w == 0 {
				zeros++
			}
		}
	}
	if zeros == 0 {
		t.Fatal("L1 should zero out noise-feature weights")
	}
	if acc := Accuracy(clf.PredictProba(X), y); acc < 0.9 {
		t.Fatalf("L1 model accuracy = %v", acc)
	}
}

func TestSGDClassifierRobustToHugeInputs(t *testing.T) {
	clf := &SGDClassifier{Seed: 1}
	Xtr, ytr := blobs(300, 1.5, 1)
	clf.Fit(Xtr, ytr, 2)
	Xhuge := linalg.NewMatrix(5, 4)
	for i := range Xhuge.Data {
		Xhuge.Data[i] = 1e12
	}
	checkProba(t, clf.PredictProba(Xhuge)) // must not produce NaN
}

func TestMLPLearnsBlobs(t *testing.T) {
	acc := trainAndScore(t, &MLPClassifier{Hidden: []int{16, 8}, Epochs: 25, Seed: 1}, 1.5)
	if acc < 0.95 {
		t.Fatalf("dnn accuracy = %v, want >= 0.95", acc)
	}
}

func TestMLPLearnsNonlinearXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 800
	X := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		X.Set(i, 0, a)
		X.Set(i, 1, b)
		if a*b > 0 {
			y[i] = 1
		}
	}
	clf := &MLPClassifier{Hidden: []int{16, 8}, Epochs: 60, Seed: 1}
	if err := clf.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(clf.PredictProba(X), y)
	if acc < 0.9 {
		t.Fatalf("XOR accuracy = %v, want >= 0.9 (linear models cap at ~0.5)", acc)
	}
}

func TestGBDTLearnsBlobs(t *testing.T) {
	acc := trainAndScore(t, &GBDTClassifier{Trees: 20, Seed: 1}, 1.5)
	if acc < 0.95 {
		t.Fatalf("xgb accuracy = %v, want >= 0.95", acc)
	}
}

func TestGBDTMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 600
	X := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(3)
		y[i] = c
		X.Set(i, 0, rng.NormFloat64()+3*float64(c))
		X.Set(i, 1, rng.NormFloat64())
	}
	clf := &GBDTClassifier{Trees: 15, Seed: 1}
	if err := clf.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	proba := clf.PredictProba(X)
	checkProba(t, proba)
	if acc := Accuracy(proba, y); acc < 0.9 {
		t.Fatalf("3-class accuracy = %v", acc)
	}
}

func TestRegressionTreeFitsStepFunction(t *testing.T) {
	n := 200
	X := linalg.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / float64(n)
		X.Set(i, 0, v)
		if v > 0.5 {
			y[i] = 3
		}
	}
	tree := &RegressionTree{MaxDepth: 2, MinLeaf: 5}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := tree.Predict(X)
	mae := 0.0
	for i := range pred {
		mae += math.Abs(pred[i] - y[i])
		// Away from the step boundary (histogram-bin resolution) the fit
		// must be essentially exact.
		v := X.At(i, 0)
		if (v < 0.4 || v > 0.6) && math.Abs(pred[i]-y[i]) > 0.2 {
			t.Fatalf("tree failed step function at %d: pred %v want %v", i, pred[i], y[i])
		}
	}
	if mae/float64(n) > 0.1 {
		t.Fatalf("tree MAE = %v", mae/float64(n))
	}
	if tree.Depth() < 1 {
		t.Fatal("tree did not split")
	}
}

func TestRegressionTreeRespectsMinLeaf(t *testing.T) {
	X := linalg.NewMatrix(6, 1)
	y := []float64{0, 0, 0, 1, 1, 1}
	for i := 0; i < 6; i++ {
		X.Set(i, 0, float64(i))
	}
	tree := &RegressionTree{MaxDepth: 5, MinLeaf: 10}
	tree.Fit(X, y)
	if tree.Depth() != 0 {
		t.Fatal("tree should stay a stump when MinLeaf exceeds half the data")
	}
}

func TestGBDTRegressorFitsQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 400
	X := linalg.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()*2 - 1
		X.Set(i, 0, v)
		y[i] = v * v
	}
	reg := &GBDTRegressor{Trees: 80, MaxDepth: 3, Seed: 1}
	if err := reg.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := reg.Predict(X)
	mae := 0.0
	for i := range pred {
		mae += math.Abs(pred[i] - y[i])
	}
	mae /= float64(n)
	if mae > 0.05 {
		t.Fatalf("GBDT regressor MAE = %v", mae)
	}
}

func TestRandomForestRegressor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 500
	X := linalg.NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		X.Set(i, 0, a)
		X.Set(i, 1, b)
		X.Set(i, 2, rng.Float64()) // noise feature
		y[i] = 2*a + b
	}
	rf := &RandomForestRegressor{Trees: 40, Seed: 1}
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := rf.Predict(X)
	mae := 0.0
	for i := range pred {
		mae += math.Abs(pred[i] - y[i])
	}
	mae /= float64(n)
	if mae > 0.1 {
		t.Fatalf("forest MAE = %v", mae)
	}
}

func TestRandomForestDeterministicForSeed(t *testing.T) {
	X, yInt := blobs(100, 1, 3)
	y := make([]float64, len(yInt))
	for i, v := range yInt {
		y[i] = float64(v)
	}
	a := &RandomForestRegressor{Trees: 10, Seed: 7}
	b := &RandomForestRegressor{Trees: 10, Seed: 7}
	a.Fit(X, y)
	b.Fit(X, y)
	pa := a.Predict(X)
	pb := b.Predict(X)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("forest not deterministic for fixed seed")
		}
	}
}

func TestGridSearchPicksWorkingModel(t *testing.T) {
	X, y := blobs(300, 1.5, 1)
	cands := []Candidate{
		{Name: "bad", New: func() Classifier {
			return &SGDClassifier{LearningRate: 1e-9, Epochs: 1, Seed: 1}
		}},
		{Name: "good", New: func() Classifier {
			return &SGDClassifier{Seed: 1}
		}},
	}
	clf, name, err := GridSearchCV(X, y, 2, 5, cands, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if name != "good" {
		t.Fatalf("grid search picked %q", name)
	}
	if acc := Accuracy(clf.PredictProba(X), y); acc < 0.9 {
		t.Fatalf("refit accuracy = %v", acc)
	}
}

func TestGridSearchNoCandidates(t *testing.T) {
	X, y := blobs(20, 1, 1)
	if _, _, err := GridSearchCV(X, y, 2, 5, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error")
	}
}

func TestKFoldPartition(t *testing.T) {
	folds := kFoldIndices(10, 3, rand.New(rand.NewSource(1)))
	seen := map[int]bool{}
	total := 0
	for _, f := range folds {
		total += len(f)
		for _, idx := range f {
			if seen[idx] {
				t.Fatal("index in multiple folds")
			}
			seen[idx] = true
		}
	}
	if total != 10 || len(folds) != 3 {
		t.Fatalf("folds = %v", folds)
	}
}

func TestBinningRoundTrip(t *testing.T) {
	X := linalg.FromRows([][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}})
	b := newBinning(X, 4)
	// codes must be monotone in the value
	prev := -1
	for i := 0; i < 8; i++ {
		code := int(b.codes[i*b.cols])
		if code < prev {
			t.Fatalf("bin codes not monotone: %v", b.codes)
		}
		prev = code
	}
}

func TestBinIndexBoundaries(t *testing.T) {
	edges := []float64{1, 2, 3}
	cases := map[float64]int{0.5: 0, 1: 1, 1.5: 1, 3: 3, 99: 3}
	for v, want := range cases {
		if got := binIndex(edges, v); got != want {
			t.Fatalf("binIndex(%v) = %d, want %d", v, got, want)
		}
	}
	if binIndex(edges, math.NaN()) != 0 {
		t.Fatal("NaN should land in bin 0")
	}
}

func TestAccuracyHelper(t *testing.T) {
	proba := linalg.FromRows([][]float64{{0.9, 0.1}, {0.3, 0.7}})
	if Accuracy(proba, []int{0, 1}) != 1 {
		t.Fatal("accuracy wrong")
	}
	if Accuracy(proba, []int{1, 0}) != 0 {
		t.Fatal("accuracy wrong")
	}
}
