package models

import (
	"fmt"
	"math"
	"math/rand"

	"blackboxval/internal/linalg"
)

// Penalty selects the regularization of the linear model.
type Penalty int

const (
	// L2 penalizes the squared norm of the weights.
	L2 Penalty = iota
	// L1 penalizes the absolute norm, driving weights to exactly zero —
	// the paper notes L1-regularized models may ignore perturbed features
	// entirely, which is one reason raw-data drift detection can mislead.
	L1
)

// SGDClassifier is a softmax (multinomial logistic) regression model
// trained with minibatch stochastic gradient descent, the Go counterpart
// of scikit-learn's SGDClassifier used as the "lr" black box.
type SGDClassifier struct {
	LearningRate float64 // step size (default 0.05)
	Lambda       float64 // regularization strength (default 1e-4)
	Penalty      Penalty
	Epochs       int   // passes over the data (default 30)
	BatchSize    int   // minibatch size (default 32)
	Seed         int64 // RNG seed for shuffling and init

	weights *linalg.Matrix // d x m
	bias    []float64      // m
	classes int
}

func (s *SGDClassifier) defaults() {
	if s.LearningRate == 0 {
		s.LearningRate = 0.05
	}
	if s.Lambda == 0 {
		s.Lambda = 1e-4
	}
	if s.Epochs == 0 {
		s.Epochs = 30
	}
	if s.BatchSize == 0 {
		s.BatchSize = 32
	}
}

// Fit trains the model by minimizing cross-entropy plus the penalty.
func (s *SGDClassifier) Fit(X *linalg.Matrix, y []int, classes int) error {
	if X.Rows != len(y) {
		return fmt.Errorf("models: %d rows but %d labels", X.Rows, len(y))
	}
	if classes < 2 {
		return fmt.Errorf("models: need at least 2 classes, got %d", classes)
	}
	s.defaults()
	rng := rand.New(rand.NewSource(s.Seed + 1))
	d := X.Cols
	s.classes = classes
	s.weights = linalg.NewMatrix(d, classes)
	s.bias = make([]float64, classes)
	for i := range s.weights.Data {
		s.weights.Data[i] = rng.NormFloat64() * 0.01
	}

	idx := make([]int, X.Rows)
	for i := range idx {
		idx[i] = i
	}
	gradW := linalg.NewMatrix(d, classes)
	gradB := make([]float64, classes)
	for epoch := 0; epoch < s.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		lr := s.LearningRate / (1 + 0.02*float64(epoch))
		for start := 0; start < len(idx); start += s.BatchSize {
			end := start + s.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			for i := range gradW.Data {
				gradW.Data[i] = 0
			}
			for j := range gradB {
				gradB[j] = 0
			}
			for _, r := range batch {
				row := X.Row(r)
				probs := s.logits(row)
				softmaxInPlace(probs)
				for c := 0; c < classes; c++ {
					g := probs[c]
					if c == y[r] {
						g -= 1
					}
					if g == 0 {
						continue
					}
					gradB[c] += g
					for f, xv := range row {
						if xv != 0 {
							gradW.Data[f*classes+c] += g * xv
						}
					}
				}
			}
			scale := lr / float64(len(batch))
			for i, g := range gradW.Data {
				w := s.weights.Data[i] - scale*g
				switch s.Penalty {
				case L2:
					w -= lr * s.Lambda * s.weights.Data[i]
				case L1:
					// soft-threshold toward zero
					shrink := lr * s.Lambda
					if w > shrink {
						w -= shrink
					} else if w < -shrink {
						w += shrink
					} else {
						w = 0
					}
				}
				s.weights.Data[i] = w
			}
			for j, g := range gradB {
				s.bias[j] -= scale * g
			}
		}
	}
	return nil
}

// logits computes the raw scores for a single example, clamping to a safe
// range so corrupted inputs (e.g. scaled by 1000x) yield saturated
// probabilities instead of NaN.
func (s *SGDClassifier) logits(row []float64) []float64 {
	out := make([]float64, s.classes)
	copy(out, s.bias)
	for f, xv := range row {
		if xv == 0 {
			continue
		}
		wr := s.weights.Row(f)
		for c, wv := range wr {
			out[c] += xv * wv
		}
	}
	for c, v := range out {
		out[c] = clampLogit(v)
	}
	return out
}

func clampLogit(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v > 500:
		return 500
	case v < -500:
		return -500
	default:
		return v
	}
}

func softmaxInPlace(xs []float64) {
	max := xs[0]
	for _, v := range xs[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range xs {
		e := math.Exp(v - max)
		xs[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range xs {
		xs[i] *= inv
	}
}

// PredictProba implements Classifier.
func (s *SGDClassifier) PredictProba(X *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(X.Rows, s.classes)
	for i := 0; i < X.Rows; i++ {
		probs := s.logits(X.Row(i))
		softmaxInPlace(probs)
		copy(out.Row(i), probs)
	}
	return out
}

// LRCandidates returns the paper's grid for the lr model: regularization
// type (L1/L2) crossed with learning rate.
func LRCandidates(seed int64) []Candidate {
	var cands []Candidate
	for _, pen := range []Penalty{L2, L1} {
		for _, lr := range []float64{0.01, 0.05, 0.2} {
			pen, lr := pen, lr
			name := fmt.Sprintf("lr(penalty=%d,eta=%g)", pen, lr)
			cands = append(cands, Candidate{Name: name, New: func() Classifier {
				return &SGDClassifier{LearningRate: lr, Penalty: pen, Seed: seed}
			}})
		}
	}
	return cands
}
