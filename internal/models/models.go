// Package models implements the black box classifiers of the paper's
// evaluation from scratch: a logistic regression trained with SGD (lr), a
// two-layer feed-forward neural network (dnn), gradient-boosted decision
// trees (xgb) and a convolutional network for images (conv) — plus the
// learners the validation system itself needs: CART trees, a random
// forest regressor (the performance predictor h) and a gradient-boosted
// classifier (the performance validator). Model selection uses k-fold
// cross-validation with grid search, as in Section 6 of the paper.
package models

import (
	"fmt"
	"math/rand"

	"blackboxval/internal/data"
	"blackboxval/internal/featurize"
	"blackboxval/internal/linalg"
)

// Classifier is a probabilistic classifier over feature matrices.
type Classifier interface {
	// Fit trains on feature matrix X with labels y drawn from
	// {0,...,classes-1}.
	Fit(X *linalg.Matrix, y []int, classes int) error
	// PredictProba returns an n x classes matrix of class probabilities.
	PredictProba(X *linalg.Matrix) *linalg.Matrix
}

// Regressor is a real-valued predictor over feature matrices.
type Regressor interface {
	Fit(X *linalg.Matrix, y []float64) error
	Predict(X *linalg.Matrix) []float64
}

// Pipeline couples a fitted feature map with a trained classifier and
// exposes only the data.Model contract — from the outside it is a black
// box that maps datasets to class probabilities.
type Pipeline struct {
	feat    *featurize.Pipeline
	clf     Classifier
	classes int
}

// TrainPipeline fits the feature map on ds, featurizes it and trains clf,
// returning the assembled black box.
func TrainPipeline(ds *data.Dataset, clf Classifier, hashDims int) (*Pipeline, error) {
	feat := &featurize.Pipeline{HashDims: hashDims}
	if err := feat.Fit(ds); err != nil {
		return nil, fmt.Errorf("models: fitting feature map: %w", err)
	}
	X, err := feat.Transform(ds)
	if err != nil {
		return nil, fmt.Errorf("models: featurizing training data: %w", err)
	}
	classes := len(ds.Classes)
	if err := clf.Fit(X, ds.Labels, classes); err != nil {
		return nil, fmt.Errorf("models: training classifier: %w", err)
	}
	return &Pipeline{feat: feat, clf: clf, classes: classes}, nil
}

// PredictProba implements data.Model.
func (p *Pipeline) PredictProba(ds *data.Dataset) *linalg.Matrix {
	X, err := p.feat.Transform(ds)
	if err != nil {
		// The black box contract has no error channel (a remote model
		// would answer any request); schema mismatch is a programming
		// error here.
		panic(fmt.Sprintf("models: featurizing serving data: %v", err))
	}
	return p.clf.PredictProba(X)
}

// NumClasses implements data.Model.
func (p *Pipeline) NumClasses() int { return p.classes }

// Accuracy is the scoring function L used throughout: fraction of argmax
// predictions matching the labels.
func Accuracy(proba *linalg.Matrix, y []int) float64 {
	if proba.Rows != len(y) {
		panic("models: probability matrix and labels disagree")
	}
	if len(y) == 0 {
		return 0
	}
	hits := 0
	for i := range y {
		if linalg.ArgmaxRow(proba.Row(i)) == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(y))
}

// kFoldIndices splits n shuffled row indices into k contiguous folds.
func kFoldIndices(n, k int, rng *rand.Rand) [][]int {
	if k < 2 {
		panic("models: need at least 2 folds")
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}

// Candidate is one grid-search cell: a name and a factory for a fresh
// classifier with those hyperparameters.
type Candidate struct {
	Name string
	New  func() Classifier
}

// GridSearchCV evaluates every candidate with k-fold cross-validated
// accuracy on (X, y), then refits the best configuration on all the data.
// It mirrors the paper's "five-fold cross-validation with grid search"
// training protocol.
func GridSearchCV(X *linalg.Matrix, y []int, classes, folds int, cands []Candidate, rng *rand.Rand) (Classifier, string, error) {
	if len(cands) == 0 {
		return nil, "", fmt.Errorf("models: no candidates to search")
	}
	if folds > len(y) {
		folds = len(y)
	}
	bestScore := -1.0
	bestIdx := 0
	if len(cands) > 1 {
		foldIdx := kFoldIndices(len(y), folds, rng)
		for ci, cand := range cands {
			score, err := crossValScore(X, y, classes, foldIdx, cand.New)
			if err != nil {
				return nil, "", fmt.Errorf("models: cross-validating %s: %w", cand.Name, err)
			}
			if score > bestScore {
				bestScore = score
				bestIdx = ci
			}
		}
	}
	best := cands[bestIdx].New()
	if err := best.Fit(X, y, classes); err != nil {
		return nil, "", fmt.Errorf("models: refitting %s: %w", cands[bestIdx].Name, err)
	}
	return best, cands[bestIdx].Name, nil
}

func crossValScore(X *linalg.Matrix, y []int, classes int, folds [][]int, newClf func() Classifier) (float64, error) {
	total := 0.0
	for f := range folds {
		var trainIdx []int
		for g := range folds {
			if g != f {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		valIdx := folds[f]
		trainY := make([]int, len(trainIdx))
		for i, idx := range trainIdx {
			trainY[i] = y[idx]
		}
		valY := make([]int, len(valIdx))
		for i, idx := range valIdx {
			valY[i] = y[idx]
		}
		clf := newClf()
		if err := clf.Fit(X.SelectRows(trainIdx), trainY, classes); err != nil {
			return 0, err
		}
		total += Accuracy(clf.PredictProba(X.SelectRows(valIdx)), valY)
	}
	return total / float64(len(folds)), nil
}
