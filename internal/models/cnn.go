package models

import (
	"fmt"
	"math"
	"math/rand"

	"blackboxval/internal/linalg"
)

// CNNClassifier is a small convolutional network for the image tasks: two
// 3x3 convolution layers with ReLU and 2x2 max pooling, a dense ReLU
// layer with dropout, and a softmax output — the architecture of the
// paper's "conv" model. The default filter counts are scaled down from
// the paper's 32/64/128 to keep pure-Go training tractable; the
// large-convnet configuration in the AutoML experiments scales them up.
type CNNClassifier struct {
	ImageSize    int     // input side length (default 28)
	Conv1        int     // filters in the first conv layer (default 8)
	Conv2        int     // filters in the second conv layer (default 16)
	Dense        int     // width of the dense layer (default 64)
	Dropout      float64 // dropout rate on the dense layer (default 0.25)
	LearningRate float64 // step size (default 0.05)
	Epochs       int     // passes over the data (default 4)
	BatchSize    int     // minibatch size (default 32)
	Momentum     float64 // SGD momentum (default 0.9)
	Seed         int64

	classes int
	// geometry, derived at fit time
	c1Out, p1Out, c2Out, p2Out, flat int

	w1, w2, wd, wo     *linalg.Matrix // conv1, conv2, dense, output weights
	b1, b2, bd, bo     []float64
	vw1, vw2, vwd, vwo *linalg.Matrix
	vb1, vb2, vbd, vbo []float64
}

func (c *CNNClassifier) defaults() {
	if c.ImageSize == 0 {
		c.ImageSize = 28
	}
	if c.Conv1 == 0 {
		c.Conv1 = 8
	}
	if c.Conv2 == 0 {
		c.Conv2 = 16
	}
	if c.Dense == 0 {
		c.Dense = 64
	}
	if c.Dropout == 0 {
		c.Dropout = 0.25
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Epochs == 0 {
		c.Epochs = 4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
}

// im2col lowers a (channels x size x size) image to a matrix with one row
// per output pixel and one column per (channel, ky, kx) patch entry, for
// valid 3x3 convolution.
func im2col(img []float64, channels, size int) *linalg.Matrix {
	out := size - 2
	m := linalg.NewMatrix(out*out, channels*9)
	for oy := 0; oy < out; oy++ {
		for ox := 0; ox < out; ox++ {
			row := m.Row(oy*out + ox)
			col := 0
			for ch := 0; ch < channels; ch++ {
				base := ch * size * size
				for ky := 0; ky < 3; ky++ {
					idx := base + (oy+ky)*size + ox
					row[col] = img[idx]
					row[col+1] = img[idx+1]
					row[col+2] = img[idx+2]
					col += 3
				}
			}
		}
	}
	return m
}

// col2im scatters patch-gradients back into an image gradient, the
// adjoint of im2col.
func col2im(grad *linalg.Matrix, channels, size int) []float64 {
	out := size - 2
	img := make([]float64, channels*size*size)
	for oy := 0; oy < out; oy++ {
		for ox := 0; ox < out; ox++ {
			row := grad.Row(oy*out + ox)
			col := 0
			for ch := 0; ch < channels; ch++ {
				base := ch * size * size
				for ky := 0; ky < 3; ky++ {
					idx := base + (oy+ky)*size + ox
					img[idx] += row[col]
					img[idx+1] += row[col+1]
					img[idx+2] += row[col+2]
					col += 3
				}
			}
		}
	}
	return img
}

// maxPool performs 2x2/stride-2 pooling per channel, recording argmax
// indices for the backward pass.
func maxPool(img []float64, channels, size int) (pooled []float64, argmax []int, outSize int) {
	outSize = size / 2
	pooled = make([]float64, channels*outSize*outSize)
	argmax = make([]int, len(pooled))
	for ch := 0; ch < channels; ch++ {
		base := ch * size * size
		obase := ch * outSize * outSize
		for oy := 0; oy < outSize; oy++ {
			for ox := 0; ox < outSize; ox++ {
				bestIdx := base + (2*oy)*size + 2*ox
				best := img[bestIdx]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := base + (2*oy+dy)*size + (2*ox + dx)
						if img[idx] > best {
							best = img[idx]
							bestIdx = idx
						}
					}
				}
				o := obase + oy*outSize + ox
				pooled[o] = best
				argmax[o] = bestIdx
			}
		}
	}
	return pooled, argmax, outSize
}

// Fit trains the network with minibatch SGD with momentum.
func (c *CNNClassifier) Fit(X *linalg.Matrix, y []int, classes int) error {
	c.defaults()
	if X.Cols != c.ImageSize*c.ImageSize {
		return fmt.Errorf("models: CNN expects %d pixels, got %d", c.ImageSize*c.ImageSize, X.Cols)
	}
	if X.Rows != len(y) {
		return fmt.Errorf("models: %d rows but %d labels", X.Rows, len(y))
	}
	c.classes = classes
	c.c1Out = c.ImageSize - 2
	c.p1Out = c.c1Out / 2
	c.c2Out = c.p1Out - 2
	c.p2Out = c.c2Out / 2
	c.flat = c.Conv2 * c.p2Out * c.p2Out

	rng := rand.New(rand.NewSource(c.Seed + 4))
	initMat := func(rows, cols int, fanIn float64) *linalg.Matrix {
		m := linalg.NewMatrix(rows, cols)
		scale := math.Sqrt(2 / fanIn)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64() * scale
		}
		return m
	}
	c.w1 = initMat(9, c.Conv1, 9)                          // (1*3*3) x C1
	c.w2 = initMat(c.Conv1*9, c.Conv2, float64(c.Conv1*9)) // (C1*3*3) x C2
	c.wd = initMat(c.flat, c.Dense, float64(c.flat))
	c.wo = initMat(c.Dense, classes, float64(c.Dense))
	c.b1 = make([]float64, c.Conv1)
	c.b2 = make([]float64, c.Conv2)
	c.bd = make([]float64, c.Dense)
	c.bo = make([]float64, classes)
	c.vw1 = linalg.NewMatrix(9, c.Conv1)
	c.vw2 = linalg.NewMatrix(c.Conv1*9, c.Conv2)
	c.vwd = linalg.NewMatrix(c.flat, c.Dense)
	c.vwo = linalg.NewMatrix(c.Dense, classes)
	c.vb1 = make([]float64, c.Conv1)
	c.vb2 = make([]float64, c.Conv2)
	c.vbd = make([]float64, c.Dense)
	c.vbo = make([]float64, classes)

	idx := make([]int, X.Rows)
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < c.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		lr := c.LearningRate / (1 + 0.1*float64(epoch))
		for start := 0; start < len(idx); start += c.BatchSize {
			end := start + c.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			c.trainBatch(X, y, idx[start:end], lr, rng)
		}
	}
	return nil
}

// convForward holds per-image forward state needed for backprop.
type convForward struct {
	cols1, cols2 *linalg.Matrix // im2col matrices
	act1, act2   *linalg.Matrix // post-ReLU conv activations (pixels x filters)
	pool1, pool2 []float64
	arg1, arg2   []int
	dense        []float64 // post-ReLU dense activation
	dropMask     []bool
	probs        []float64
}

// forwardOne runs a single image through the network. dropRng enables
// dropout when non-nil (training mode).
func (c *CNNClassifier) forwardOne(img []float64, dropRng *rand.Rand) *convForward {
	f := &convForward{}
	// conv1 over the single input channel
	f.cols1 = im2col(img, 1, c.ImageSize)
	f.act1 = linalg.MatMul(f.cols1, c.w1)
	linalg.AddRowVector(f.act1, c.b1)
	for i, v := range f.act1.Data {
		if v < 0 {
			f.act1.Data[i] = 0
		}
	}
	// reorder to channel-major image for pooling
	chImg1 := pixelsToChannels(f.act1, c.Conv1, c.c1Out)
	f.pool1, f.arg1, _ = maxPool(chImg1, c.Conv1, c.c1Out)

	// conv2 over Conv1 channels
	f.cols2 = im2col(f.pool1, c.Conv1, c.p1Out)
	f.act2 = linalg.MatMul(f.cols2, c.w2)
	linalg.AddRowVector(f.act2, c.b2)
	for i, v := range f.act2.Data {
		if v < 0 {
			f.act2.Data[i] = 0
		}
	}
	chImg2 := pixelsToChannels(f.act2, c.Conv2, c.c2Out)
	f.pool2, f.arg2, _ = maxPool(chImg2, c.Conv2, c.c2Out)

	// dense + dropout
	f.dense = make([]float64, c.Dense)
	for j := 0; j < c.Dense; j++ {
		s := c.bd[j]
		for i, v := range f.pool2 {
			if v != 0 {
				s += v * c.wd.At(i, j)
			}
		}
		if s < 0 {
			s = 0
		}
		f.dense[j] = s
	}
	if dropRng != nil && c.Dropout > 0 {
		f.dropMask = make([]bool, c.Dense)
		keep := 1 - c.Dropout
		for j := range f.dense {
			if dropRng.Float64() < c.Dropout {
				f.dropMask[j] = true
				f.dense[j] = 0
			} else {
				f.dense[j] /= keep // inverted dropout
			}
		}
	}

	// output softmax
	f.probs = make([]float64, c.classes)
	copy(f.probs, c.bo)
	for j := 0; j < c.Dense; j++ {
		v := f.dense[j]
		if v == 0 {
			continue
		}
		for k := 0; k < c.classes; k++ {
			f.probs[k] += v * c.wo.At(j, k)
		}
	}
	for k, v := range f.probs {
		f.probs[k] = clampLogit(v)
	}
	softmaxInPlace(f.probs)
	return f
}

// pixelsToChannels converts a (pixels x filters) activation matrix to a
// channel-major image vector (filters x h x w).
func pixelsToChannels(act *linalg.Matrix, filters, side int) []float64 {
	out := make([]float64, filters*side*side)
	for p := 0; p < act.Rows; p++ {
		row := act.Row(p)
		for ch := 0; ch < filters; ch++ {
			out[ch*side*side+p] = row[ch]
		}
	}
	return out
}

// channelsToPixels is the inverse layout transform for gradients.
func channelsToPixels(img []float64, filters, side int) *linalg.Matrix {
	out := linalg.NewMatrix(side*side, filters)
	for p := 0; p < side*side; p++ {
		row := out.Row(p)
		for ch := 0; ch < filters; ch++ {
			row[ch] = img[ch*side*side+p]
		}
	}
	return out
}

func (c *CNNClassifier) trainBatch(X *linalg.Matrix, y []int, batch []int, lr float64, rng *rand.Rand) {
	gw1 := linalg.NewMatrix(9, c.Conv1)
	gw2 := linalg.NewMatrix(c.Conv1*9, c.Conv2)
	gwd := linalg.NewMatrix(c.flat, c.Dense)
	gwo := linalg.NewMatrix(c.Dense, c.classes)
	gb1 := make([]float64, c.Conv1)
	gb2 := make([]float64, c.Conv2)
	gbd := make([]float64, c.Dense)
	gbo := make([]float64, c.classes)

	for _, r := range batch {
		f := c.forwardOne(X.Row(r), rng)
		// output delta
		dOut := append([]float64(nil), f.probs...)
		dOut[y[r]] -= 1
		for k, d := range dOut {
			gbo[k] += d
		}
		dDense := make([]float64, c.Dense)
		for j := 0; j < c.Dense; j++ {
			v := f.dense[j]
			for k, d := range dOut {
				if v != 0 {
					gwo.Data[j*c.classes+k] += v * d
				}
				dDense[j] += c.wo.At(j, k) * d
			}
		}
		// dropout + ReLU gates on dense
		keep := 1 - c.Dropout
		for j := range dDense {
			if f.dropMask != nil && f.dropMask[j] {
				dDense[j] = 0
				continue
			}
			if f.dense[j] == 0 {
				dDense[j] = 0
				continue
			}
			if f.dropMask != nil {
				dDense[j] /= keep
			}
		}
		dFlat := make([]float64, c.flat)
		for j, d := range dDense {
			if d == 0 {
				continue
			}
			gbd[j] += d
			for i, v := range f.pool2 {
				if v != 0 {
					gwd.Data[i*c.Dense+j] += v * d
				}
				dFlat[i] += c.wd.At(i, j) * d
			}
		}
		// unpool into conv2 activation gradient
		dChImg2 := make([]float64, c.Conv2*c.c2Out*c.c2Out)
		for o, src := range f.arg2 {
			dChImg2[src] += dFlat[o]
		}
		dAct2 := channelsToPixels(dChImg2, c.Conv2, c.c2Out)
		for i, v := range f.act2.Data {
			if v <= 0 {
				dAct2.Data[i] = 0
			}
		}
		// conv2 gradients
		gw2Part := linalg.MatMul(linalg.Transpose(f.cols2), dAct2)
		linalg.Axpy(1, gw2Part.Data, gw2.Data)
		for p := 0; p < dAct2.Rows; p++ {
			for ch, d := range dAct2.Row(p) {
				gb2[ch] += d
			}
		}
		// gradient into pool1 output
		dCols2 := linalg.MatMul(dAct2, linalg.Transpose(c.w2))
		dPool1 := col2im(dCols2, c.Conv1, c.p1Out)
		// unpool into conv1 activation gradient
		dChImg1 := make([]float64, c.Conv1*c.c1Out*c.c1Out)
		for o, src := range f.arg1 {
			dChImg1[src] += dPool1[o]
		}
		dAct1 := channelsToPixels(dChImg1, c.Conv1, c.c1Out)
		for i, v := range f.act1.Data {
			if v <= 0 {
				dAct1.Data[i] = 0
			}
		}
		gw1Part := linalg.MatMul(linalg.Transpose(f.cols1), dAct1)
		linalg.Axpy(1, gw1Part.Data, gw1.Data)
		for p := 0; p < dAct1.Rows; p++ {
			for ch, d := range dAct1.Row(p) {
				gb1[ch] += d
			}
		}
	}

	scale := lr / float64(len(batch))
	update := func(w, vw *linalg.Matrix, g *linalg.Matrix) {
		for i := range w.Data {
			vw.Data[i] = c.Momentum*vw.Data[i] - scale*g.Data[i]
			w.Data[i] += vw.Data[i]
		}
	}
	updateVec := func(b, vb, g []float64) {
		for i := range b {
			vb[i] = c.Momentum*vb[i] - scale*g[i]
			b[i] += vb[i]
		}
	}
	update(c.w1, c.vw1, gw1)
	update(c.w2, c.vw2, gw2)
	update(c.wd, c.vwd, gwd)
	update(c.wo, c.vwo, gwo)
	updateVec(c.b1, c.vb1, gb1)
	updateVec(c.b2, c.vb2, gb2)
	updateVec(c.bd, c.vbd, gbd)
	updateVec(c.bo, c.vbo, gbo)
}

// PredictProba implements Classifier (dropout disabled).
func (c *CNNClassifier) PredictProba(X *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(X.Rows, c.classes)
	for i := 0; i < X.Rows; i++ {
		f := c.forwardOne(X.Row(i), nil)
		copy(out.Row(i), f.probs)
	}
	return out
}

// ConvCandidates returns a small architecture grid for the conv model.
func ConvCandidates(seed int64) []Candidate {
	var cands []Candidate
	for _, cfg := range []struct{ c1, c2, dense int }{{8, 16, 64}} {
		cfg := cfg
		name := fmt.Sprintf("conv(%d,%d,%d)", cfg.c1, cfg.c2, cfg.dense)
		cands = append(cands, Candidate{Name: name, New: func() Classifier {
			return &CNNClassifier{Conv1: cfg.c1, Conv2: cfg.c2, Dense: cfg.dense, Seed: seed}
		}})
	}
	return cands
}
