package models

import (
	"math"
	"math/rand"
	"sort"

	"blackboxval/internal/linalg"
)

// treeNode is a node of a CART regression tree. Leaves have feature == -1.
type treeNode struct {
	feature   int
	threshold float64
	left      int // child indices into RegressionTree.nodes
	right     int
	value     float64
}

// RegressionTree is a CART regression tree trained on least squares,
// using histogram-based split finding for speed. It is the base learner
// for both the gradient-boosted models and the random forest.
type RegressionTree struct {
	MaxDepth    int     // maximum depth (default 3)
	MinLeaf     int     // minimum samples per leaf (default 5)
	FeatureFrac float64 // fraction of features considered per split (default 1.0)
	Bins        int     // histogram bins per feature (default 32)
	Seed        int64

	nodes []treeNode
}

func (t *RegressionTree) defaults() {
	if t.MaxDepth == 0 {
		t.MaxDepth = 3
	}
	if t.MinLeaf == 0 {
		t.MinLeaf = 5
	}
	if t.FeatureFrac == 0 {
		t.FeatureFrac = 1
	}
	if t.Bins == 0 {
		t.Bins = 32
	}
}

// binning holds the shared histogram discretization of a feature matrix.
// It is computed once per ensemble fit and reused by every tree.
type binning struct {
	edges  [][]float64 // per-feature ascending bin upper edges (len bins-1)
	codes  []uint8     // row-major binned matrix
	cols   int
	values [][]float64 // per-feature representative value per bin (bin lower midpoint)
}

// newBinning discretizes X into at most bins buckets per feature using
// quantile edges.
func newBinning(X *linalg.Matrix, bins int) *binning {
	b := &binning{cols: X.Cols, codes: make([]uint8, len(X.Data))}
	b.edges = make([][]float64, X.Cols)
	b.values = make([][]float64, X.Cols)
	col := make([]float64, X.Rows)
	for j := 0; j < X.Cols; j++ {
		for i := 0; i < X.Rows; i++ {
			col[i] = X.At(i, j)
		}
		sorted := append([]float64(nil), col...)
		sort.Float64s(sorted)
		var edges []float64
		for k := 1; k < bins; k++ {
			q := sorted[k*len(sorted)/bins]
			if len(edges) == 0 || q > edges[len(edges)-1] {
				edges = append(edges, q)
			}
		}
		b.edges[j] = edges
		vals := make([]float64, len(edges)+1)
		for k := range vals {
			switch {
			case k == 0:
				vals[k] = sorted[0]
			default:
				vals[k] = edges[k-1]
			}
		}
		b.values[j] = vals
		for i := 0; i < X.Rows; i++ {
			b.codes[i*X.Cols+j] = uint8(binIndex(edges, col[i]))
		}
	}
	return b
}

// binIndex returns the bucket of v: the count of edges <= v.
func binIndex(edges []float64, v float64) int {
	lo, hi := 0, len(edges)
	if math.IsNaN(v) {
		return 0
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if edges[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Fit trains the tree on (X, targets) with optional per-row weights used
// as Newton denominators (hessians) by gradient boosting; pass nil for
// plain least-squares leaves.
func (t *RegressionTree) Fit(X *linalg.Matrix, targets []float64) error {
	t.defaults()
	b := newBinning(X, t.Bins)
	rows := make([]int, X.Rows)
	for i := range rows {
		rows[i] = i
	}
	t.fitBinned(b, rows, targets, nil)
	return nil
}

// fitBinned grows the tree on pre-binned data. hessians may be nil.
func (t *RegressionTree) fitBinned(b *binning, rows []int, grads, hessians []float64) {
	t.defaults()
	t.nodes = t.nodes[:0]
	rng := rand.New(rand.NewSource(t.Seed + 3))
	t.grow(b, rows, grads, hessians, 0, rng)
}

// grow recursively builds the subtree over rows and returns its node index.
func (t *RegressionTree) grow(b *binning, rows []int, grads, hessians []float64, depth int, rng *rand.Rand) int {
	sumG, sumH := 0.0, 0.0
	for _, r := range rows {
		sumG += grads[r]
		if hessians != nil {
			sumH += hessians[r]
		}
	}
	if hessians == nil {
		sumH = float64(len(rows))
	}
	leafValue := 0.0
	if sumH > 1e-12 {
		leafValue = sumG / sumH
	}

	nodeIdx := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{feature: -1, value: leafValue})
	if depth >= t.MaxDepth || len(rows) < 2*t.MinLeaf {
		return nodeIdx
	}

	feat, bin, gain := t.bestSplit(b, rows, grads, hessians, sumG, sumH, rng)
	if gain <= 1e-12 || feat < 0 {
		return nodeIdx
	}

	var left, right []int
	for _, r := range rows {
		if int(b.codes[r*b.cols+feat]) <= bin {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < t.MinLeaf || len(right) < t.MinLeaf {
		return nodeIdx
	}

	t.nodes[nodeIdx].feature = feat
	t.nodes[nodeIdx].threshold = b.edges[feat][bin] // split: value < edge goes left
	t.nodes[nodeIdx].left = t.grow(b, left, grads, hessians, depth+1, rng)
	t.nodes[nodeIdx].right = t.grow(b, right, grads, hessians, depth+1, rng)
	return nodeIdx
}

// bestSplit scans histogram bins of a random feature subset for the split
// maximizing the variance-reduction (or Newton gain) criterion.
func (t *RegressionTree) bestSplit(b *binning, rows []int, grads, hessians []float64, sumG, sumH float64, rng *rand.Rand) (feature, bin int, gain float64) {
	feature, bin = -1, -1
	parentScore := sumG * sumG / sumH

	nFeat := b.cols
	featIdx := rng.Perm(nFeat)
	if t.FeatureFrac < 1 {
		k := int(math.Ceil(t.FeatureFrac * float64(nFeat)))
		if k < 1 {
			k = 1
		}
		featIdx = featIdx[:k]
	}

	histG := make([]float64, t.Bins)
	histH := make([]float64, t.Bins)
	histN := make([]int, t.Bins)
	for _, j := range featIdx {
		nEdges := len(b.edges[j])
		if nEdges == 0 {
			continue // constant feature
		}
		for k := 0; k <= nEdges; k++ {
			histG[k], histH[k] = 0, 0
			histN[k] = 0
		}
		if hessians != nil {
			for _, r := range rows {
				c := b.codes[r*b.cols+j]
				histG[c] += grads[r]
				histH[c] += hessians[r]
				histN[c]++
			}
		} else {
			for _, r := range rows {
				c := b.codes[r*b.cols+j]
				histG[c] += grads[r]
				histH[c]++
				histN[c]++
			}
		}
		leftG, leftH := 0.0, 0.0
		leftN := 0
		for k := 0; k < nEdges; k++ { // split after bin k
			leftG += histG[k]
			leftH += histH[k]
			leftN += histN[k]
			rightN := len(rows) - leftN
			if leftN < t.MinLeaf || rightN < t.MinLeaf {
				continue
			}
			rightG := sumG - leftG
			rightH := sumH - leftH
			if leftH < 1e-12 || rightH < 1e-12 {
				continue
			}
			g := leftG*leftG/leftH + rightG*rightG/rightH - parentScore
			if g > gain {
				gain = g
				feature = j
				bin = k
			}
		}
	}
	return feature, bin, gain
}

// Predict implements Regressor for a fitted tree.
func (t *RegressionTree) Predict(X *linalg.Matrix) []float64 {
	out := make([]float64, X.Rows)
	for i := range out {
		out[i] = t.predictRow(X.Row(i))
	}
	return out
}

func (t *RegressionTree) predictRow(row []float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	idx := 0
	for {
		n := t.nodes[idx]
		if n.feature < 0 {
			return n.value
		}
		// Training splits on bin <= k, i.e. value < edges[k].
		if row[n.feature] < n.threshold {
			idx = n.left
		} else {
			idx = n.right
		}
	}
}

// predictBinned evaluates the tree on a row of the training binning.
func (t *RegressionTree) predictBinned(b *binning, row int) float64 {
	idx := 0
	for {
		n := t.nodes[idx]
		if n.feature < 0 {
			return n.value
		}
		v := b.values[n.feature][b.codes[row*b.cols+n.feature]]
		if v < n.threshold {
			idx = n.left
		} else {
			idx = n.right
		}
	}
}

// Depth returns the depth of the fitted tree (0 for a stump/leaf).
func (t *RegressionTree) Depth() int {
	var depth func(idx int) int
	depth = func(idx int) int {
		n := t.nodes[idx]
		if n.feature < 0 {
			return 0
		}
		l, r := depth(n.left), depth(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return depth(0)
}
