package models

import (
	"math"
	"testing"

	"blackboxval/internal/datagen"
	"blackboxval/internal/featurize"
	"blackboxval/internal/linalg"
)

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// col2im(im2col(x)) on an all-ones gradient counts how many patches
	// cover each pixel; verify the corner pixel is covered exactly once
	// and the center 9 times for a single channel.
	size := 6
	img := make([]float64, size*size)
	for i := range img {
		img[i] = 1
	}
	cols := im2col(img, 1, size)
	if cols.Rows != 16 || cols.Cols != 9 {
		t.Fatalf("im2col shape = %dx%d", cols.Rows, cols.Cols)
	}
	grad := linalg.NewMatrix(cols.Rows, cols.Cols)
	for i := range grad.Data {
		grad.Data[i] = 1
	}
	back := col2im(grad, 1, size)
	if back[0] != 1 {
		t.Fatalf("corner coverage = %v, want 1", back[0])
	}
	center := back[3*size+3]
	if center != 9 {
		t.Fatalf("center coverage = %v, want 9", center)
	}
}

func TestIm2ColValues(t *testing.T) {
	size := 4
	img := make([]float64, 16)
	for i := range img {
		img[i] = float64(i)
	}
	cols := im2col(img, 1, size)
	// first output pixel patch = rows 0..2, cols 0..2
	want := []float64{0, 1, 2, 4, 5, 6, 8, 9, 10}
	for i, v := range want {
		if cols.At(0, i) != v {
			t.Fatalf("patch[%d] = %v, want %v", i, cols.At(0, i), v)
		}
	}
}

func TestMaxPool(t *testing.T) {
	img := []float64{
		1, 2, 5, 0,
		3, 4, 1, 1,
		0, 0, 9, 8,
		0, 7, 6, 5,
	}
	pooled, argmax, out := maxPool(img, 1, 4)
	if out != 2 {
		t.Fatalf("out size = %d", out)
	}
	want := []float64{4, 5, 7, 9}
	for i, v := range want {
		if pooled[i] != v {
			t.Fatalf("pooled = %v, want %v", pooled, want)
		}
	}
	if img[argmax[0]] != 4 || img[argmax[3]] != 9 {
		t.Fatal("argmax indices wrong")
	}
}

func TestCNNLearnsDigits(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training is slow")
	}
	train := datagen.Digits(700, 1)
	test := datagen.Digits(200, 2)
	feat := &featurize.Pipeline{}
	if err := feat.Fit(train); err != nil {
		t.Fatal(err)
	}
	Xtr, _ := feat.Transform(train)
	Xte, _ := feat.Transform(test)
	clf := &CNNClassifier{Epochs: 3, Seed: 1}
	if err := clf.Fit(Xtr, train.Labels, 2); err != nil {
		t.Fatal(err)
	}
	proba := clf.PredictProba(Xte)
	checkProba(t, proba)
	acc := Accuracy(proba, test.Labels)
	if acc < 0.85 {
		t.Fatalf("conv accuracy = %v, want >= 0.85", acc)
	}
}

func TestCNNRejectsWrongPixelCount(t *testing.T) {
	clf := &CNNClassifier{Seed: 1}
	X := linalg.NewMatrix(2, 10)
	if err := clf.Fit(X, []int{0, 1}, 2); err == nil {
		t.Fatal("expected error for wrong pixel count")
	}
}

func TestCNNProbaRowsSumToOneUntrainedInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training is slow")
	}
	train := datagen.Digits(150, 3)
	feat := &featurize.Pipeline{}
	feat.Fit(train)
	Xtr, _ := feat.Transform(train)
	clf := &CNNClassifier{Epochs: 1, Conv1: 4, Conv2: 8, Dense: 16, Seed: 1}
	if err := clf.Fit(Xtr, train.Labels, 2); err != nil {
		t.Fatal(err)
	}
	// All-black and all-white images must still give valid distributions.
	X := linalg.NewMatrix(2, 28*28)
	for j := 0; j < 28*28; j++ {
		X.Set(1, j, 1)
	}
	proba := clf.PredictProba(X)
	checkProba(t, proba)
	for _, v := range proba.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN probability")
		}
	}
}
