package models

import (
	"fmt"
	"math"

	"blackboxval/internal/linalg"
)

// GBDTClassifier implements gradient-boosted decision trees for
// classification (the "xgb" black box and the learner behind the
// performance validator). Binary problems use logistic boosting with
// Newton leaf values; multiclass problems use one softmax-coupled tree
// per class per round.
type GBDTClassifier struct {
	Trees        int     // boosting rounds (default 40)
	MaxDepth     int     // tree depth (default 3)
	LearningRate float64 // shrinkage (default 0.2)
	MinLeaf      int     // minimum samples per leaf (default 5)
	FeatureFrac  float64 // per-split feature subsample (default 0.8)
	Seed         int64

	classes   int
	baseScore []float64           // initial log-odds per class
	rounds    [][]*RegressionTree // rounds[r][c]
}

func (g *GBDTClassifier) defaults() {
	if g.Trees == 0 {
		g.Trees = 40
	}
	if g.MaxDepth == 0 {
		g.MaxDepth = 3
	}
	if g.LearningRate == 0 {
		g.LearningRate = 0.2
	}
	if g.MinLeaf == 0 {
		g.MinLeaf = 5
	}
	if g.FeatureFrac == 0 {
		g.FeatureFrac = 0.8
	}
}

// Fit trains the boosted ensemble.
func (g *GBDTClassifier) Fit(X *linalg.Matrix, y []int, classes int) error {
	if X.Rows != len(y) {
		return fmt.Errorf("models: %d rows but %d labels", X.Rows, len(y))
	}
	if classes < 2 {
		return fmt.Errorf("models: need at least 2 classes, got %d", classes)
	}
	g.defaults()
	g.classes = classes
	n := X.Rows

	// Prior log-probabilities as the base score.
	counts := make([]float64, classes)
	for _, c := range y {
		counts[c]++
	}
	g.baseScore = make([]float64, classes)
	for c := range g.baseScore {
		p := (counts[c] + 1) / float64(n+classes)
		g.baseScore[c] = math.Log(p)
	}

	b := newBinning(X, 32)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}

	// scores[i*classes+c] accumulates the raw boosted score.
	scores := make([]float64, n*classes)
	for i := 0; i < n; i++ {
		copy(scores[i*classes:(i+1)*classes], g.baseScore)
	}

	probs := make([]float64, classes)
	grads := make([]float64, n)
	hess := make([]float64, n)
	g.rounds = nil
	for r := 0; r < g.Trees; r++ {
		round := make([]*RegressionTree, classes)
		// Compute softmax probabilities once per round.
		probMat := make([]float64, n*classes)
		for i := 0; i < n; i++ {
			copy(probs, scores[i*classes:(i+1)*classes])
			softmaxInPlace(probs)
			copy(probMat[i*classes:(i+1)*classes], probs)
		}
		for c := 0; c < classes; c++ {
			for i := 0; i < n; i++ {
				p := probMat[i*classes+c]
				target := 0.0
				if y[i] == c {
					target = 1
				}
				grads[i] = target - p
				hess[i] = math.Max(p*(1-p), 1e-6)
			}
			tree := &RegressionTree{
				MaxDepth:    g.MaxDepth,
				MinLeaf:     g.MinLeaf,
				FeatureFrac: g.FeatureFrac,
				Seed:        g.Seed + int64(r*classes+c),
			}
			tree.defaults()
			tree.fitBinned(b, rows, grads, hess)
			round[c] = tree
			for i := 0; i < n; i++ {
				scores[i*classes+c] += g.LearningRate * tree.predictBinned(b, i)
			}
		}
		g.rounds = append(g.rounds, round)
	}
	return nil
}

// PredictProba implements Classifier.
func (g *GBDTClassifier) PredictProba(X *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(X.Rows, g.classes)
	for i := 0; i < X.Rows; i++ {
		row := X.Row(i)
		scores := out.Row(i)
		copy(scores, g.baseScore)
		for _, round := range g.rounds {
			for c, tree := range round {
				scores[c] += g.LearningRate * tree.predictRow(row)
			}
		}
		for c, v := range scores {
			scores[c] = clampLogit(v)
		}
	}
	linalg.SoftmaxRows(out)
	return out
}

// XGBCandidates returns the paper's grid for the xgb model: number and
// depth of trees.
func XGBCandidates(seed int64) []Candidate {
	var cands []Candidate
	for _, trees := range []int{20, 40} {
		for _, depth := range []int{2, 3, 4} {
			trees, depth := trees, depth
			name := fmt.Sprintf("xgb(trees=%d,depth=%d)", trees, depth)
			cands = append(cands, Candidate{Name: name, New: func() Classifier {
				return &GBDTClassifier{Trees: trees, MaxDepth: depth, Seed: seed}
			}})
		}
	}
	return cands
}

// GBDTRegressor implements gradient-boosted trees for regression with
// squared loss. It is one of the ablation alternatives for the
// performance predictor h.
type GBDTRegressor struct {
	Trees        int     // boosting rounds (default 100)
	MaxDepth     int     // tree depth (default 3)
	LearningRate float64 // shrinkage (default 0.1)
	MinLeaf      int     // minimum samples per leaf (default 3)
	Seed         int64

	base  float64
	trees []*RegressionTree
}

func (g *GBDTRegressor) defaults() {
	if g.Trees == 0 {
		g.Trees = 100
	}
	if g.MaxDepth == 0 {
		g.MaxDepth = 3
	}
	if g.LearningRate == 0 {
		g.LearningRate = 0.1
	}
	if g.MinLeaf == 0 {
		g.MinLeaf = 3
	}
}

// Fit trains the boosted regression ensemble on squared loss.
func (g *GBDTRegressor) Fit(X *linalg.Matrix, y []float64) error {
	if X.Rows != len(y) {
		return fmt.Errorf("models: %d rows but %d targets", X.Rows, len(y))
	}
	g.defaults()
	n := X.Rows
	g.base = 0
	for _, v := range y {
		g.base += v
	}
	if n > 0 {
		g.base /= float64(n)
	}
	b := newBinning(X, 32)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = g.base
	}
	resid := make([]float64, n)
	g.trees = nil
	for r := 0; r < g.Trees; r++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tree := &RegressionTree{MaxDepth: g.MaxDepth, MinLeaf: g.MinLeaf, Seed: g.Seed + int64(r)}
		tree.defaults()
		tree.fitBinned(b, rows, resid, nil)
		g.trees = append(g.trees, tree)
		for i := 0; i < n; i++ {
			pred[i] += g.LearningRate * tree.predictBinned(b, i)
		}
	}
	return nil
}

// Predict implements Regressor.
func (g *GBDTRegressor) Predict(X *linalg.Matrix) []float64 {
	out := make([]float64, X.Rows)
	for i := range out {
		row := X.Row(i)
		v := g.base
		for _, tree := range g.trees {
			v += g.LearningRate * tree.predictRow(row)
		}
		out[i] = v
	}
	return out
}
