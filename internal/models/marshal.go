package models

import (
	"encoding/json"
	"fmt"

	"blackboxval/internal/featurize"
	"blackboxval/internal/linalg"
)

// This file implements JSON serialization for every learner, so trained
// black boxes, predictors and validators can be shipped between processes
// — the paper publishes "serialized datasets and models" alongside its
// experiments, and a deployed validator must be loadable next to the
// serving system without retraining.

// matrixState is the wire form of a dense matrix.
type matrixState struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

func matrixToState(m *linalg.Matrix) *matrixState {
	if m == nil {
		return nil
	}
	return &matrixState{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

func stateToMatrix(s *matrixState) (*linalg.Matrix, error) {
	if s == nil {
		return nil, nil
	}
	if len(s.Data) != s.Rows*s.Cols {
		return nil, fmt.Errorf("models: matrix state has %d values for %dx%d", len(s.Data), s.Rows, s.Cols)
	}
	return &linalg.Matrix{Rows: s.Rows, Cols: s.Cols, Data: s.Data}, nil
}

// ---- SGDClassifier ----

type sgdState struct {
	LearningRate float64      `json:"learning_rate"`
	Lambda       float64      `json:"lambda"`
	Penalty      Penalty      `json:"penalty"`
	Epochs       int          `json:"epochs"`
	BatchSize    int          `json:"batch_size"`
	Seed         int64        `json:"seed"`
	Weights      *matrixState `json:"weights"`
	Bias         []float64    `json:"bias"`
	Classes      int          `json:"classes"`
}

// MarshalJSON implements json.Marshaler.
func (s *SGDClassifier) MarshalJSON() ([]byte, error) {
	return json.Marshal(sgdState{
		LearningRate: s.LearningRate, Lambda: s.Lambda, Penalty: s.Penalty,
		Epochs: s.Epochs, BatchSize: s.BatchSize, Seed: s.Seed,
		Weights: matrixToState(s.weights), Bias: s.bias, Classes: s.classes,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *SGDClassifier) UnmarshalJSON(b []byte) error {
	var st sgdState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	w, err := stateToMatrix(st.Weights)
	if err != nil {
		return err
	}
	s.LearningRate, s.Lambda, s.Penalty = st.LearningRate, st.Lambda, st.Penalty
	s.Epochs, s.BatchSize, s.Seed = st.Epochs, st.BatchSize, st.Seed
	s.weights, s.bias, s.classes = w, st.Bias, st.Classes
	return nil
}

// ---- MLPClassifier ----

type mlpState struct {
	Hidden       []int          `json:"hidden"`
	LearningRate float64        `json:"learning_rate"`
	Epochs       int            `json:"epochs"`
	BatchSize    int            `json:"batch_size"`
	Momentum     float64        `json:"momentum"`
	Seed         int64          `json:"seed"`
	Weights      []*matrixState `json:"weights"`
	Biases       [][]float64    `json:"biases"`
	Classes      int            `json:"classes"`
}

// MarshalJSON implements json.Marshaler.
func (m *MLPClassifier) MarshalJSON() ([]byte, error) {
	st := mlpState{
		Hidden: m.Hidden, LearningRate: m.LearningRate, Epochs: m.Epochs,
		BatchSize: m.BatchSize, Momentum: m.Momentum, Seed: m.Seed,
		Biases: m.biases, Classes: m.classes,
	}
	for _, w := range m.weights {
		st.Weights = append(st.Weights, matrixToState(w))
	}
	return json.Marshal(st)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *MLPClassifier) UnmarshalJSON(b []byte) error {
	var st mlpState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	m.Hidden, m.LearningRate, m.Epochs = st.Hidden, st.LearningRate, st.Epochs
	m.BatchSize, m.Momentum, m.Seed = st.BatchSize, st.Momentum, st.Seed
	m.biases, m.classes = st.Biases, st.Classes
	m.weights = nil
	for _, ws := range st.Weights {
		w, err := stateToMatrix(ws)
		if err != nil {
			return err
		}
		m.weights = append(m.weights, w)
	}
	return nil
}

// ---- RegressionTree ----

type treeNodeState struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int     `json:"l"`
	Right     int     `json:"r"`
	Value     float64 `json:"v"`
}

type treeState struct {
	MaxDepth    int             `json:"max_depth"`
	MinLeaf     int             `json:"min_leaf"`
	FeatureFrac float64         `json:"feature_frac"`
	Bins        int             `json:"bins"`
	Seed        int64           `json:"seed"`
	Nodes       []treeNodeState `json:"nodes"`
}

func (t *RegressionTree) state() treeState {
	st := treeState{
		MaxDepth: t.MaxDepth, MinLeaf: t.MinLeaf,
		FeatureFrac: t.FeatureFrac, Bins: t.Bins, Seed: t.Seed,
	}
	for _, n := range t.nodes {
		st.Nodes = append(st.Nodes, treeNodeState{
			Feature: n.feature, Threshold: n.threshold,
			Left: n.left, Right: n.right, Value: n.value,
		})
	}
	return st
}

func (t *RegressionTree) restore(st treeState) {
	t.MaxDepth, t.MinLeaf = st.MaxDepth, st.MinLeaf
	t.FeatureFrac, t.Bins, t.Seed = st.FeatureFrac, st.Bins, st.Seed
	t.nodes = nil
	for _, n := range st.Nodes {
		t.nodes = append(t.nodes, treeNode{
			feature: n.Feature, threshold: n.Threshold,
			left: n.Left, right: n.Right, value: n.Value,
		})
	}
}

// MarshalJSON implements json.Marshaler.
func (t *RegressionTree) MarshalJSON() ([]byte, error) { return json.Marshal(t.state()) }

// UnmarshalJSON implements json.Unmarshaler.
func (t *RegressionTree) UnmarshalJSON(b []byte) error {
	var st treeState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	t.restore(st)
	return nil
}

// ---- GBDTClassifier ----

type gbdtClassifierState struct {
	Trees        int                 `json:"trees"`
	MaxDepth     int                 `json:"max_depth"`
	LearningRate float64             `json:"learning_rate"`
	MinLeaf      int                 `json:"min_leaf"`
	FeatureFrac  float64             `json:"feature_frac"`
	Seed         int64               `json:"seed"`
	Classes      int                 `json:"classes"`
	BaseScore    []float64           `json:"base_score"`
	Rounds       [][]*RegressionTree `json:"rounds"`
}

// MarshalJSON implements json.Marshaler.
func (g *GBDTClassifier) MarshalJSON() ([]byte, error) {
	return json.Marshal(gbdtClassifierState{
		Trees: g.Trees, MaxDepth: g.MaxDepth, LearningRate: g.LearningRate,
		MinLeaf: g.MinLeaf, FeatureFrac: g.FeatureFrac, Seed: g.Seed,
		Classes: g.classes, BaseScore: g.baseScore, Rounds: g.rounds,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *GBDTClassifier) UnmarshalJSON(b []byte) error {
	var st gbdtClassifierState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	g.Trees, g.MaxDepth, g.LearningRate = st.Trees, st.MaxDepth, st.LearningRate
	g.MinLeaf, g.FeatureFrac, g.Seed = st.MinLeaf, st.FeatureFrac, st.Seed
	g.classes, g.baseScore, g.rounds = st.Classes, st.BaseScore, st.Rounds
	return nil
}

// ---- GBDTRegressor ----

type gbdtRegressorState struct {
	Trees        int               `json:"trees"`
	MaxDepth     int               `json:"max_depth"`
	LearningRate float64           `json:"learning_rate"`
	MinLeaf      int               `json:"min_leaf"`
	Seed         int64             `json:"seed"`
	Base         float64           `json:"base"`
	Ensemble     []*RegressionTree `json:"ensemble"`
}

// MarshalJSON implements json.Marshaler.
func (g *GBDTRegressor) MarshalJSON() ([]byte, error) {
	return json.Marshal(gbdtRegressorState{
		Trees: g.Trees, MaxDepth: g.MaxDepth, LearningRate: g.LearningRate,
		MinLeaf: g.MinLeaf, Seed: g.Seed, Base: g.base, Ensemble: g.trees,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *GBDTRegressor) UnmarshalJSON(b []byte) error {
	var st gbdtRegressorState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	g.Trees, g.MaxDepth, g.LearningRate = st.Trees, st.MaxDepth, st.LearningRate
	g.MinLeaf, g.Seed, g.base, g.trees = st.MinLeaf, st.Seed, st.Base, st.Ensemble
	return nil
}

// ---- RandomForestRegressor ----

type forestState struct {
	Trees       int               `json:"trees"`
	MaxDepth    int               `json:"max_depth"`
	MinLeaf     int               `json:"min_leaf"`
	FeatureFrac float64           `json:"feature_frac"`
	Seed        int64             `json:"seed"`
	Ensemble    []*RegressionTree `json:"ensemble"`
}

// MarshalJSON implements json.Marshaler.
func (f *RandomForestRegressor) MarshalJSON() ([]byte, error) {
	return json.Marshal(forestState{
		Trees: f.Trees, MaxDepth: f.MaxDepth, MinLeaf: f.MinLeaf,
		FeatureFrac: f.FeatureFrac, Seed: f.Seed, Ensemble: f.trees,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *RandomForestRegressor) UnmarshalJSON(b []byte) error {
	var st forestState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	f.Trees, f.MaxDepth, f.MinLeaf = st.Trees, st.MaxDepth, st.MinLeaf
	f.FeatureFrac, f.Seed, f.trees = st.FeatureFrac, st.Seed, st.Ensemble
	return nil
}

// ---- CNNClassifier ----

type cnnState struct {
	ImageSize    int          `json:"image_size"`
	Conv1        int          `json:"conv1"`
	Conv2        int          `json:"conv2"`
	Dense        int          `json:"dense"`
	Dropout      float64      `json:"dropout"`
	LearningRate float64      `json:"learning_rate"`
	Epochs       int          `json:"epochs"`
	BatchSize    int          `json:"batch_size"`
	Momentum     float64      `json:"momentum"`
	Seed         int64        `json:"seed"`
	Classes      int          `json:"classes"`
	W1           *matrixState `json:"w1"`
	W2           *matrixState `json:"w2"`
	WD           *matrixState `json:"wd"`
	WO           *matrixState `json:"wo"`
	B1           []float64    `json:"b1"`
	B2           []float64    `json:"b2"`
	BD           []float64    `json:"bd"`
	BO           []float64    `json:"bo"`
}

// MarshalJSON implements json.Marshaler.
func (c *CNNClassifier) MarshalJSON() ([]byte, error) {
	return json.Marshal(cnnState{
		ImageSize: c.ImageSize, Conv1: c.Conv1, Conv2: c.Conv2, Dense: c.Dense,
		Dropout: c.Dropout, LearningRate: c.LearningRate, Epochs: c.Epochs,
		BatchSize: c.BatchSize, Momentum: c.Momentum, Seed: c.Seed,
		Classes: c.classes,
		W1:      matrixToState(c.w1), W2: matrixToState(c.w2),
		WD: matrixToState(c.wd), WO: matrixToState(c.wo),
		B1: c.b1, B2: c.b2, BD: c.bd, BO: c.bo,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *CNNClassifier) UnmarshalJSON(b []byte) error {
	var st cnnState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	var err error
	c.ImageSize, c.Conv1, c.Conv2, c.Dense = st.ImageSize, st.Conv1, st.Conv2, st.Dense
	c.Dropout, c.LearningRate, c.Epochs = st.Dropout, st.LearningRate, st.Epochs
	c.BatchSize, c.Momentum, c.Seed, c.classes = st.BatchSize, st.Momentum, st.Seed, st.Classes
	if c.w1, err = stateToMatrix(st.W1); err != nil {
		return err
	}
	if c.w2, err = stateToMatrix(st.W2); err != nil {
		return err
	}
	if c.wd, err = stateToMatrix(st.WD); err != nil {
		return err
	}
	if c.wo, err = stateToMatrix(st.WO); err != nil {
		return err
	}
	c.b1, c.b2, c.bd, c.bo = st.B1, st.B2, st.BD, st.BO
	// Re-derive the geometry that Fit would have computed.
	c.defaults()
	c.c1Out = c.ImageSize - 2
	c.p1Out = c.c1Out / 2
	c.c2Out = c.p1Out - 2
	c.p2Out = c.c2Out / 2
	c.flat = c.Conv2 * c.p2Out * c.p2Out
	return nil
}

// ---- classifier registry and Pipeline ----

// classifierTypeName returns the stable wire tag of a classifier type.
func classifierTypeName(c Classifier) (string, error) {
	switch c.(type) {
	case *SGDClassifier:
		return "sgd", nil
	case *MLPClassifier:
		return "mlp", nil
	case *GBDTClassifier:
		return "gbdt", nil
	case *CNNClassifier:
		return "cnn", nil
	default:
		return "", fmt.Errorf("models: cannot serialize classifier type %T", c)
	}
}

// newClassifierByName is the inverse of classifierTypeName.
func newClassifierByName(name string) (Classifier, error) {
	switch name {
	case "sgd":
		return &SGDClassifier{}, nil
	case "mlp":
		return &MLPClassifier{}, nil
	case "gbdt":
		return &GBDTClassifier{}, nil
	case "cnn":
		return &CNNClassifier{}, nil
	default:
		return nil, fmt.Errorf("models: unknown classifier type %q", name)
	}
}

type pipelineState struct {
	ClassifierType string              `json:"classifier_type"`
	Classifier     json.RawMessage     `json:"classifier"`
	Features       *featurize.Pipeline `json:"features"`
	Classes        int                 `json:"classes"`
}

// MarshalJSON implements json.Marshaler for a trained black box pipeline.
func (p *Pipeline) MarshalJSON() ([]byte, error) {
	typeName, err := classifierTypeName(p.clf)
	if err != nil {
		return nil, err
	}
	clfJSON, err := json.Marshal(p.clf)
	if err != nil {
		return nil, err
	}
	return json.Marshal(pipelineState{
		ClassifierType: typeName,
		Classifier:     clfJSON,
		Features:       p.feat,
		Classes:        p.classes,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Pipeline) UnmarshalJSON(b []byte) error {
	var st pipelineState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	clf, err := newClassifierByName(st.ClassifierType)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(st.Classifier, clf); err != nil {
		return err
	}
	p.clf = clf
	p.feat = st.Features
	p.classes = st.Classes
	return nil
}
