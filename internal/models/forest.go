package models

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"blackboxval/internal/linalg"
)

// RandomForestRegressor is a bagged ensemble of CART regression trees with
// per-split feature subsampling — the learner the paper uses as the
// performance predictor h (a RandomForestRegressor in scikit-learn).
type RandomForestRegressor struct {
	Trees       int     // number of trees (default 100)
	MaxDepth    int     // tree depth (default 8)
	MinLeaf     int     // minimum samples per leaf (default 2)
	FeatureFrac float64 // per-split feature subsample (default 0.4)
	Seed        int64

	trees []*RegressionTree
}

func (f *RandomForestRegressor) defaults() {
	if f.Trees == 0 {
		f.Trees = 100
	}
	if f.MaxDepth == 0 {
		f.MaxDepth = 8
	}
	if f.MinLeaf == 0 {
		f.MinLeaf = 2
	}
	if f.FeatureFrac == 0 {
		f.FeatureFrac = 0.4
	}
}

// Fit trains the forest on bootstrap samples of (X, y), parallelizing
// across trees.
func (f *RandomForestRegressor) Fit(X *linalg.Matrix, y []float64) error {
	if X.Rows != len(y) {
		return fmt.Errorf("models: %d rows but %d targets", X.Rows, len(y))
	}
	if X.Rows == 0 {
		return fmt.Errorf("models: cannot fit forest on empty data")
	}
	f.defaults()
	b := newBinning(X, 32)
	n := X.Rows
	f.trees = make([]*RegressionTree, f.Trees)

	workers := runtime.GOMAXPROCS(0)
	if workers > f.Trees {
		workers = f.Trees
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				rng := rand.New(rand.NewSource(f.Seed + int64(t)*7919))
				rows := make([]int, n)
				for i := range rows {
					rows[i] = rng.Intn(n)
				}
				tree := &RegressionTree{
					MaxDepth:    f.MaxDepth,
					MinLeaf:     f.MinLeaf,
					FeatureFrac: f.FeatureFrac,
					Seed:        f.Seed + int64(t),
				}
				tree.defaults()
				tree.fitBinned(b, rows, y, nil)
				f.trees[t] = tree
			}
		}()
	}
	for t := 0; t < f.Trees; t++ {
		jobs <- t
	}
	close(jobs)
	wg.Wait()
	return nil
}

// Predict implements Regressor, averaging the trees.
func (f *RandomForestRegressor) Predict(X *linalg.Matrix) []float64 {
	out := make([]float64, X.Rows)
	if len(f.trees) == 0 {
		return out
	}
	for i := range out {
		row := X.Row(i)
		sum := 0.0
		for _, tree := range f.trees {
			sum += tree.predictRow(row)
		}
		out[i] = sum / float64(len(f.trees))
	}
	return out
}

// PredictWithStd returns, per row, the forest mean and the standard
// deviation across trees — an ensemble-disagreement uncertainty measure:
// inputs far from the training distribution land in different leaves per
// tree and spread the predictions.
func (f *RandomForestRegressor) PredictWithStd(X *linalg.Matrix) (mean, std []float64) {
	mean = make([]float64, X.Rows)
	std = make([]float64, X.Rows)
	if len(f.trees) == 0 {
		return mean, std
	}
	n := float64(len(f.trees))
	for i := 0; i < X.Rows; i++ {
		row := X.Row(i)
		sum, sumSq := 0.0, 0.0
		for _, tree := range f.trees {
			v := tree.predictRow(row)
			sum += v
			sumSq += v * v
		}
		m := sum / n
		mean[i] = m
		variance := sumSq/n - m*m
		if variance > 0 {
			std[i] = math.Sqrt(variance)
		}
	}
	return mean, std
}
