package models

import (
	"fmt"
	"math"
	"math/rand"

	"blackboxval/internal/linalg"
)

// MLPClassifier is a feed-forward neural network with two ReLU hidden
// layers and a softmax output, the "dnn" black box of the paper. It is
// trained with minibatch SGD with momentum on the cross-entropy loss.
type MLPClassifier struct {
	Hidden       []int   // hidden layer widths (default [32, 16])
	LearningRate float64 // step size (default 0.05)
	Epochs       int     // passes over the data (default 40)
	BatchSize    int     // minibatch size (default 32)
	Momentum     float64 // SGD momentum (default 0.9)
	Seed         int64

	weights []*linalg.Matrix // weights[l]: in x out
	biases  [][]float64
	velW    []*linalg.Matrix
	velB    [][]float64
	classes int
}

func (m *MLPClassifier) defaults() {
	if len(m.Hidden) == 0 {
		m.Hidden = []int{32, 16}
	}
	if m.LearningRate == 0 {
		m.LearningRate = 0.05
	}
	if m.Epochs == 0 {
		m.Epochs = 40
	}
	if m.BatchSize == 0 {
		m.BatchSize = 32
	}
	if m.Momentum == 0 {
		m.Momentum = 0.9
	}
}

// Fit trains the network.
func (m *MLPClassifier) Fit(X *linalg.Matrix, y []int, classes int) error {
	if X.Rows != len(y) {
		return fmt.Errorf("models: %d rows but %d labels", X.Rows, len(y))
	}
	m.defaults()
	rng := rand.New(rand.NewSource(m.Seed + 2))
	m.classes = classes
	sizes := append(append([]int{X.Cols}, m.Hidden...), classes)
	m.weights = nil
	m.biases = nil
	m.velW = nil
	m.velB = nil
	for l := 0; l+1 < len(sizes); l++ {
		w := linalg.NewMatrix(sizes[l], sizes[l+1])
		// He initialization for the ReLU layers.
		scale := math.Sqrt(2 / float64(sizes[l]))
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64() * scale
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, make([]float64, sizes[l+1]))
		m.velW = append(m.velW, linalg.NewMatrix(sizes[l], sizes[l+1]))
		m.velB = append(m.velB, make([]float64, sizes[l+1]))
	}

	idx := make([]int, X.Rows)
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		lr := m.LearningRate / (1 + 0.02*float64(epoch))
		for start := 0; start < len(idx); start += m.BatchSize {
			end := start + m.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			batchY := make([]int, len(batch))
			for i, r := range batch {
				batchY[i] = y[r]
			}
			m.step(X.SelectRows(batch), batchY, lr)
		}
	}
	return nil
}

// step runs one forward/backward pass on a minibatch and applies the
// momentum update.
func (m *MLPClassifier) step(X *linalg.Matrix, y []int, lr float64) {
	activations, _ := m.forward(X)
	batch := float64(X.Rows)

	// delta starts as dL/dlogits for softmax + cross-entropy.
	delta := activations[len(activations)-1].Clone()
	for i := 0; i < delta.Rows; i++ {
		delta.Row(i)[y[i]] -= 1
	}

	for l := len(m.weights) - 1; l >= 0; l-- {
		input := activations[l]
		gradW := linalg.MatMul(linalg.Transpose(input), delta)
		linalg.Scale(gradW, 1/batch)
		gradB := make([]float64, delta.Cols)
		for i := 0; i < delta.Rows; i++ {
			for j, v := range delta.Row(i) {
				gradB[j] += v / batch
			}
		}
		if l > 0 {
			// propagate before updating the weights
			next := linalg.MatMul(delta, linalg.Transpose(m.weights[l]))
			// ReLU derivative gate
			for i := range next.Data {
				if input.Data[i] <= 0 {
					next.Data[i] = 0
				}
			}
			delta = next
		}
		for i := range m.weights[l].Data {
			m.velW[l].Data[i] = m.Momentum*m.velW[l].Data[i] - lr*gradW.Data[i]
			m.weights[l].Data[i] += m.velW[l].Data[i]
		}
		for j := range m.biases[l] {
			m.velB[l][j] = m.Momentum*m.velB[l][j] - lr*gradB[j]
			m.biases[l][j] += m.velB[l][j]
		}
	}
}

// forward returns the activation of every layer (input first, softmax
// probabilities last) and the pre-activation of the output layer.
func (m *MLPClassifier) forward(X *linalg.Matrix) ([]*linalg.Matrix, *linalg.Matrix) {
	activations := []*linalg.Matrix{X}
	cur := X
	for l := range m.weights {
		z := linalg.MatMul(cur, m.weights[l])
		linalg.AddRowVector(z, m.biases[l])
		for i := range z.Data {
			z.Data[i] = clampLogit(z.Data[i])
		}
		if l < len(m.weights)-1 {
			for i, v := range z.Data {
				if v < 0 {
					z.Data[i] = 0
				}
			}
			activations = append(activations, z)
			cur = z
			continue
		}
		probs := z.Clone()
		linalg.SoftmaxRows(probs)
		activations = append(activations, probs)
		return activations, z
	}
	return activations, cur
}

// PredictProba implements Classifier.
func (m *MLPClassifier) PredictProba(X *linalg.Matrix) *linalg.Matrix {
	acts, _ := m.forward(X)
	return acts[len(acts)-1]
}

// DNNCandidates returns the paper's grid for the dnn model: layer sizes.
func DNNCandidates(seed int64) []Candidate {
	var cands []Candidate
	for _, hidden := range [][]int{{16, 8}, {32, 16}, {64, 32}} {
		hidden := hidden
		name := fmt.Sprintf("dnn(hidden=%v)", hidden)
		cands = append(cands, Candidate{Name: name, New: func() Classifier {
			return &MLPClassifier{Hidden: hidden, Seed: seed}
		}})
	}
	return cands
}
