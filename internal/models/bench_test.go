package models

import (
	"math/rand"
	"testing"

	"blackboxval/internal/linalg"
)

func benchData(n, d int, seed int64) (*linalg.Matrix, []int, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := linalg.NewMatrix(n, d)
	y := make([]int, n)
	yf := make([]float64, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(2)
		y[i] = c
		yf[i] = float64(c)
		for j := 0; j < d; j++ {
			X.Set(i, j, rng.NormFloat64()+float64(2*c-1))
		}
	}
	return X, y, yf
}

func BenchmarkSGDClassifierFit(b *testing.B) {
	X, y, _ := benchData(1000, 30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := &SGDClassifier{Epochs: 10, Seed: 1}
		if err := clf.Fit(X, y, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPFit(b *testing.B) {
	X, y, _ := benchData(500, 30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := &MLPClassifier{Hidden: []int{16, 8}, Epochs: 5, Seed: 1}
		if err := clf.Fit(X, y, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGBDTClassifierFit(b *testing.B) {
	X, y, _ := benchData(1000, 30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := &GBDTClassifier{Trees: 20, Seed: 1}
		if err := clf.Fit(X, y, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomForestFit(b *testing.B) {
	X, _, yf := benchData(500, 42, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := &RandomForestRegressor{Trees: 50, Seed: 1}
		if err := rf.Fit(X, yf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGBDTPredict(b *testing.B) {
	X, y, _ := benchData(1000, 30, 1)
	clf := &GBDTClassifier{Trees: 20, Seed: 1}
	if err := clf.Fit(X, y, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.PredictProba(X)
	}
}

func BenchmarkCNNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	X := linalg.NewMatrix(8, 28*28)
	y := make([]int, 8)
	for i := range X.Data {
		X.Data[i] = rng.Float64()
	}
	clf := &CNNClassifier{Epochs: 1, Conv1: 4, Conv2: 8, Dense: 16, Seed: 1}
	if err := clf.Fit(X, y, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.PredictProba(X)
	}
}

func BenchmarkBinning(b *testing.B) {
	X, _, _ := benchData(2000, 50, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newBinning(X, 32)
	}
}
