// Package explain attributes a raised alarm to the data that likely
// caused it: given a clean reference sample and a suspicious serving
// batch, it ranks every column (or, for images, derived image statistics)
// by drift suspicion using univariate tests and missing-rate deltas. The
// performance predictor says *that* quality dropped; this package helps
// an engineer see *where* to look — the debugging step the paper leaves
// to "ML experts with specialized knowledge".
package explain

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
	"blackboxval/internal/stats"
)

// Finding is the drift evidence for one column or derived statistic.
type Finding struct {
	// Column is the column name, or a derived-statistic name for image
	// and text evidence (e.g. "text:char_damage", "image:edge_mass").
	Column string
	// Kind describes the tested quantity.
	Kind string
	// Statistic and PValue come from the univariate two-sample test
	// (KS for numeric quantities, chi-squared for categorical counts).
	Statistic float64
	PValue    float64
	// MissingDelta is the increase of the missing-value rate in the
	// serving batch over the reference (0 for derived statistics).
	MissingDelta float64
	// Suspicion is the combined ranking score (higher = more suspicious).
	Suspicion float64
}

// Report ranks all findings, most suspicious first.
type Report struct {
	Findings []Finding
}

// Top returns the n most suspicious findings.
func (r *Report) Top(n int) []Finding {
	if n > len(r.Findings) {
		n = len(r.Findings)
	}
	return r.Findings[:n]
}

// Suspicious returns the findings whose test rejects at the
// Bonferroni-corrected 5% level or whose missing rate jumped by more
// than five points.
func (r *Report) Suspicious() []Finding {
	alpha := stats.BonferroniAlpha(0.05, len(r.Findings))
	var out []Finding
	for _, f := range r.Findings {
		if f.PValue < alpha || f.MissingDelta > 0.05 {
			out = append(out, f)
		}
	}
	return out
}

// String renders the report as a ranked table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-14s %10s %12s %10s\n", "column", "kind", "stat", "p-value", "missingΔ")
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%-26s %-14s %10.4f %12.3g %10.3f\n",
			f.Column, f.Kind, f.Statistic, f.PValue, f.MissingDelta)
	}
	return b.String()
}

// Explain compares a serving batch against a clean reference sample of
// the same schema and returns the ranked drift report.
func Explain(reference, serving *data.Dataset) (*Report, error) {
	if reference.Tabular() != serving.Tabular() {
		return nil, fmt.Errorf("explain: reference and serving batch have different modalities")
	}
	report := &Report{}
	if reference.Tabular() {
		if err := explainTabular(report, reference, serving); err != nil {
			return nil, err
		}
	} else {
		explainImages(report, reference, serving)
	}
	sort.SliceStable(report.Findings, func(i, j int) bool {
		return report.Findings[i].Suspicion > report.Findings[j].Suspicion
	})
	return report, nil
}

func explainTabular(report *Report, reference, serving *data.Dataset) error {
	for _, refCol := range reference.Frame.Columns() {
		srvCol := serving.Frame.Column(refCol.Name)
		if srvCol == nil {
			return fmt.Errorf("explain: serving batch lacks column %q", refCol.Name)
		}
		if srvCol.Kind != refCol.Kind {
			return fmt.Errorf("explain: column %q changed kind", refCol.Name)
		}
		switch refCol.Kind {
		case frame.Numeric:
			report.add(numericFinding(refCol, srvCol))
		case frame.Categorical:
			report.add(categoricalFinding(refCol, srvCol))
		case frame.Text:
			for _, f := range textFindings(refCol, srvCol) {
				report.add(f)
			}
		}
	}
	return nil
}

func (r *Report) add(f Finding) {
	f.Suspicion = suspicion(f.PValue, f.MissingDelta)
	r.Findings = append(r.Findings, f)
}

// suspicion combines the test p-value and the missing-rate jump into a
// single ranking score: -log10(p) plus a strong bonus per missing point.
func suspicion(pValue, missingDelta float64) float64 {
	if pValue <= 0 {
		pValue = 1e-300
	}
	return -math.Log10(pValue) + 50*math.Max(0, missingDelta)
}

func numericFinding(ref, srv *frame.Column) Finding {
	refVals, refMissing := splitMissing(ref.Num)
	srvVals, srvMissing := splitMissing(srv.Num)
	res := stats.KolmogorovSmirnov(refVals, srvVals)
	return Finding{
		Column:       ref.Name,
		Kind:         "numeric(KS)",
		Statistic:    res.Statistic,
		PValue:       res.PValue,
		MissingDelta: srvMissing - refMissing,
	}
}

func splitMissing(xs []float64) (vals []float64, missingRate float64) {
	missing := 0
	for _, v := range xs {
		if math.IsNaN(v) {
			missing++
		} else {
			vals = append(vals, v)
		}
	}
	if len(xs) > 0 {
		missingRate = float64(missing) / float64(len(xs))
	}
	return vals, missingRate
}

func categoricalFinding(ref, srv *frame.Column) Finding {
	index := map[string]int{}
	for _, v := range ref.Str {
		if _, ok := index[v]; !ok {
			index[v] = len(index)
		}
	}
	for _, v := range srv.Str {
		if _, ok := index[v]; !ok {
			index[v] = len(index)
		}
	}
	refCounts := make([]float64, len(index))
	srvCounts := make([]float64, len(index))
	refMissing, srvMissing := 0.0, 0.0
	for _, v := range ref.Str {
		refCounts[index[v]]++
		if v == "" {
			refMissing++
		}
	}
	for _, v := range srv.Str {
		srvCounts[index[v]]++
		if v == "" {
			srvMissing++
		}
	}
	res := stats.ChiSquareCounts(refCounts, srvCounts)
	f := Finding{
		Column:    ref.Name,
		Kind:      "categorical(χ²)",
		Statistic: res.Statistic,
		PValue:    res.PValue,
	}
	if len(ref.Str) > 0 && len(srv.Str) > 0 {
		f.MissingDelta = srvMissing/float64(len(srv.Str)) - refMissing/float64(len(ref.Str))
	}
	return f
}

// textFindings derives numeric summaries per document and KS-tests them:
// token count (truncation/padding bugs) and the fraction of characters
// that are neither letters nor spaces (encoding damage, leetspeak).
func textFindings(ref, srv *frame.Column) []Finding {
	tokens := func(vals []string) []float64 {
		out := make([]float64, len(vals))
		for i, v := range vals {
			out[i] = float64(len(strings.Fields(v)))
		}
		return out
	}
	damage := func(vals []string) []float64 {
		out := make([]float64, len(vals))
		for i, v := range vals {
			if len(v) == 0 {
				continue
			}
			bad := 0
			total := 0
			for _, r := range v {
				total++
				if !unicode.IsLetter(r) && !unicode.IsSpace(r) {
					bad++
				}
			}
			out[i] = float64(bad) / float64(total)
		}
		return out
	}
	tokRes := stats.KolmogorovSmirnov(tokens(ref.Str), tokens(srv.Str))
	dmgRes := stats.KolmogorovSmirnov(damage(ref.Str), damage(srv.Str))
	return []Finding{
		{Column: ref.Name + ":token_count", Kind: "text(KS)", Statistic: tokRes.Statistic, PValue: tokRes.PValue},
		{Column: ref.Name + ":char_damage", Kind: "text(KS)", Statistic: dmgRes.Statistic, PValue: dmgRes.PValue},
	}
}

// explainImages tests derived per-image statistics: mean intensity
// (brightness drift), per-image standard deviation (noise) and the
// fraction of mass in the 4-pixel border ring (rotation pushes content
// outward).
func explainImages(report *Report, reference, serving *data.Dataset) {
	type derived struct {
		name string
		fn   func(px []float64, w, h int) float64
	}
	stats3 := []derived{
		{"image:mean_intensity", func(px []float64, _, _ int) float64 {
			s := 0.0
			for _, v := range px {
				s += v
			}
			return s / float64(len(px))
		}},
		{"image:pixel_std", func(px []float64, _, _ int) float64 {
			m := 0.0
			for _, v := range px {
				m += v
			}
			m /= float64(len(px))
			ss := 0.0
			for _, v := range px {
				d := v - m
				ss += d * d
			}
			return math.Sqrt(ss / float64(len(px)))
		}},
		{"image:edge_mass", func(px []float64, w, h int) float64 {
			const ring = 4
			edge, total := 0.0, 0.0
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := px[y*w+x]
					total += v
					if x < ring || x >= w-ring || y < ring || y >= h-ring {
						edge += v
					}
				}
			}
			if total == 0 {
				return 0
			}
			return edge / total
		}},
	}
	for _, d := range stats3 {
		refVals := make([]float64, reference.Images.Len())
		for i, px := range reference.Images.Pixels {
			refVals[i] = d.fn(px, reference.Images.Width, reference.Images.Height)
		}
		srvVals := make([]float64, serving.Images.Len())
		for i, px := range serving.Images.Pixels {
			srvVals[i] = d.fn(px, serving.Images.Width, serving.Images.Height)
		}
		res := stats.KolmogorovSmirnov(refVals, srvVals)
		report.add(Finding{
			Column:    d.name,
			Kind:      "image(KS)",
			Statistic: res.Statistic,
			PValue:    res.PValue,
		})
	}
}
