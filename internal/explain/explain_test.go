package explain

import (
	"math/rand"
	"strings"
	"testing"

	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/frame"
)

func TestExplainCleanDataNothingSuspicious(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds := datagen.Income(4000, 10)
	ref, srv := ds.Split(0.5, rng)
	report, err := Explain(ref, srv)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Findings) == 0 {
		t.Fatal("no findings at all")
	}
	if sus := report.Suspicious(); len(sus) != 0 {
		t.Fatalf("clean i.i.d. split flagged: %+v", sus)
	}
}

func TestExplainPinpointsScaledColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := datagen.Income(4000, 2)
	ref, srv := ds.Split(0.5, rng)
	// Scale exactly one column by hand so the culprit is unambiguous.
	col := srv.Frame.Column("hours_per_week")
	for i := range col.Num {
		col.Num[i] *= 1000
	}
	report, err := Explain(ref, srv)
	if err != nil {
		t.Fatal(err)
	}
	if top := report.Top(1); len(top) != 1 || top[0].Column != "hours_per_week" {
		t.Fatalf("top finding = %+v, want hours_per_week", report.Top(3))
	}
	if len(report.Suspicious()) == 0 {
		t.Fatal("scaled column not flagged as suspicious")
	}
}

func TestExplainPinpointsMissingness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := datagen.Income(3000, 3)
	ref, srv := ds.Split(0.5, rng)
	col := srv.Frame.Column("occupation")
	for i := 0; i < col.Len(); i += 2 {
		frame.SetMissing(col, i)
	}
	report, err := Explain(ref, srv)
	if err != nil {
		t.Fatal(err)
	}
	top := report.Top(1)[0]
	if top.Column != "occupation" {
		t.Fatalf("top finding = %+v", top)
	}
	if top.MissingDelta < 0.4 {
		t.Fatalf("missing delta = %v, want ≈0.5", top.MissingDelta)
	}
}

func TestExplainDetectsLeetspeakViaCharDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := datagen.Tweets(3000, 4)
	ref, srv := ds.Split(0.5, rng)
	attacked := errorgen.AdversarialText{}.Corrupt(srv, 0.8, rng)
	report, err := Explain(ref, attacked)
	if err != nil {
		t.Fatal(err)
	}
	foundDamage := false
	for _, f := range report.Suspicious() {
		if strings.HasSuffix(f.Column, ":char_damage") {
			foundDamage = true
		}
	}
	if !foundDamage {
		t.Fatalf("char damage not flagged; report:\n%s", report.String())
	}
}

func TestExplainImagesDetectNoiseAndRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := datagen.Digits(600, 5)
	ref, srv := ds.Split(0.5, rng)

	noisy := errorgen.ImageNoise{}.Corrupt(srv, 1.0, rng)
	report, err := Explain(ref, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suspicious()) == 0 {
		t.Fatalf("heavy noise not flagged:\n%s", report.String())
	}

	rotated := errorgen.ImageRotation{}.Corrupt(srv, 1.0, rng)
	report, err = Explain(ref, rotated)
	if err != nil {
		t.Fatal(err)
	}
	edgeFlagged := false
	for _, f := range report.Suspicious() {
		if f.Column == "image:edge_mass" {
			edgeFlagged = true
		}
	}
	if !edgeFlagged {
		t.Fatalf("rotation did not move edge mass:\n%s", report.String())
	}
}

func TestExplainCleanImagesQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := datagen.Digits(600, 6)
	ref, srv := ds.Split(0.5, rng)
	report, err := Explain(ref, srv)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suspicious()) != 0 {
		t.Fatalf("clean image split flagged:\n%s", report.String())
	}
}

func TestExplainSchemaErrors(t *testing.T) {
	tab := datagen.Income(50, 7)
	img := datagen.Digits(20, 7)
	if _, err := Explain(tab, img); err == nil {
		t.Fatal("modality mismatch should error")
	}
	other := datagen.Heart(50, 7)
	if _, err := Explain(tab, other); err == nil {
		t.Fatal("schema mismatch should error")
	}
}

func TestReportTopAndString(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := datagen.Bank(1000, 8)
	ref, srv := ds.Split(0.5, rng)
	report, err := Explain(ref, srv)
	if err != nil {
		t.Fatal(err)
	}
	if got := report.Top(3); len(got) != 3 {
		t.Fatalf("Top(3) = %d findings", len(got))
	}
	if got := report.Top(1000); len(got) != len(report.Findings) {
		t.Fatal("Top should cap at total findings")
	}
	// Ranked descending by suspicion.
	for i := 1; i < len(report.Findings); i++ {
		if report.Findings[i].Suspicion > report.Findings[i-1].Suspicion {
			t.Fatal("findings not sorted")
		}
	}
	if !strings.Contains(report.String(), "p-value") {
		t.Fatal("String output missing header")
	}
}
