package core

import (
	"fmt"

	"blackboxval/internal/stats"
)

// StreamAccumulator builds the percentile features of Algorithm 2 from a
// stream of individual model outputs, without buffering the batch: each
// class column is tracked by a P² online quantile digest, so memory is
// O(classes x grid) regardless of how many predictions flow through.
// This serves deployments where the serving system logs one prediction at
// a time and batching is impractical.
type StreamAccumulator struct {
	classes int
	step    float64
	digests []*stats.P2Digest
}

// NewStreamAccumulator returns an accumulator for the given class count
// and percentile grid step (0 means the default step of 5).
func NewStreamAccumulator(classes int, percentileStep float64) *StreamAccumulator {
	if classes < 2 {
		panic(fmt.Sprintf("core: need at least 2 classes, got %d", classes))
	}
	if percentileStep == 0 {
		percentileStep = 5
	}
	a := &StreamAccumulator{classes: classes, step: percentileStep}
	grid := stats.PercentileGrid(percentileStep)
	for c := 0; c < classes; c++ {
		a.digests = append(a.digests, stats.NewP2Digest(grid))
	}
	return a
}

// Add consumes one model output (a probability row of length classes).
func (a *StreamAccumulator) Add(probaRow []float64) {
	if len(probaRow) != a.classes {
		panic(fmt.Sprintf("core: output row has %d classes, accumulator expects %d", len(probaRow), a.classes))
	}
	for c, v := range probaRow {
		a.digests[c].Add(v)
	}
}

// Count returns the number of predictions consumed.
func (a *StreamAccumulator) Count() int {
	if len(a.digests) == 0 {
		return 0
	}
	return a.digests[0].Count()
}

// Features returns the current percentile feature vector, compatible with
// PredictionStatistics over the same outputs.
func (a *StreamAccumulator) Features() []float64 {
	out := make([]float64, 0, a.classes*len(stats.PercentileGrid(a.step)))
	for _, d := range a.digests {
		out = append(out, d.Values()...)
	}
	return out
}

// Reset clears the accumulator for the next window.
func (a *StreamAccumulator) Reset() {
	grid := stats.PercentileGrid(a.step)
	for c := range a.digests {
		a.digests[c] = stats.NewP2Digest(grid)
	}
}

// PercentileStep returns the configured grid step.
func (a *StreamAccumulator) PercentileStep() float64 { return a.step }

// EstimateFromFeatures runs the regression model of Algorithm 2 directly
// on a percentile feature vector, e.g. one produced by a
// StreamAccumulator. The vector must use the predictor's percentile step.
func (p *Predictor) EstimateFromFeatures(feats []float64) float64 {
	X := matrixFromRow(feats)
	v := p.reg.Predict(X)[0]
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// NewStreamAccumulator returns an accumulator matched to this predictor's
// class count and percentile grid.
func (p *Predictor) NewStreamAccumulator() *StreamAccumulator {
	step := p.cfg.PercentileStep
	if step == 0 {
		step = 5
	}
	return NewStreamAccumulator(p.testOutputs.Cols, step)
}
