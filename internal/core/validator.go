package core

import (
	"context"
	"fmt"
	"math"

	"blackboxval/internal/data"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/linalg"
	"blackboxval/internal/models"
	"blackboxval/internal/obs"
)

// ValidatorConfig controls the training of a performance validator.
type ValidatorConfig struct {
	// Generators are the expected error types; validator training batches
	// are random mixtures of these. Required.
	Generators []errorgen.Generator
	// Threshold t is the acceptable relative score drop: serving
	// predictions are valid while score >= (1-t)*testScore (default 0.05).
	Threshold float64
	// Batches is the number of synthetic serving batches used to train
	// the classifier (default 300).
	Batches int
	// PercentileStep for the output featurizer (default 5).
	PercentileStep float64
	// UseKSFeatures adds Kolmogorov–Smirnov statistics between test and
	// serving outputs to the feature set (default true; the ablation
	// benchmark disables it).
	DisableKSFeatures bool
	// Score is the scoring function L (default AccuracyScore).
	Score ScoreFunc
	// Trees and Depth configure the gradient-boosted classifier
	// (defaults 60 and 3).
	Trees, Depth int
	// PredictorRepetitions sizes the training of the internal performance
	// predictor whose score estimate is one of the validator's features
	// (default 25 per generator).
	PredictorRepetitions int
	// Workers bounds the goroutine pool generating synthetic training
	// batches (default runtime.NumCPU(); 1 runs strictly serially). Every
	// batch derives its own RNG from Seed and the batch index, so the
	// trained validator is bit-identical for every Workers value.
	Workers int
	// Seed drives all randomness.
	Seed int64
}

func (c *ValidatorConfig) defaults() {
	if c.Threshold == 0 {
		c.Threshold = 0.05
	}
	if c.Batches == 0 {
		c.Batches = 300
	}
	if c.PercentileStep == 0 {
		c.PercentileStep = 5
	}
	if c.Score == nil {
		c.Score = AccuracyScore
	}
	if c.Trees == 0 {
		c.Trees = 60
	}
	if c.Depth == 0 {
		c.Depth = 3
	}
	if c.PredictorRepetitions == 0 {
		c.PredictorRepetitions = 25
	}
}

// Validator decides whether the black box model's score on an unlabeled
// serving batch dropped by more than the user's threshold relative to the
// clean test score. It is a gradient-boosted decision tree over the
// output-percentile features augmented with hypothesis-test statistics
// between the retained test outputs Ŷtest and the serving outputs.
type Validator struct {
	model data.Model
	cfg   ValidatorConfig

	clf         *models.GBDTClassifier
	predictor   *Predictor // supplies the score-estimate feature
	testScore   float64
	testOutputs *linalg.Matrix
	trainPos    int
	trainTotal  int
}

// TrainValidator builds a performance validator for the given black box
// model using corrupted versions of the held-out test set: each batch is
// hit by a random mixture of the expected error types at random
// magnitudes, labeled 1 ("violation") when the resulting score falls below
// (1-t) times the clean test score.
func TrainValidator(model data.Model, test *data.Dataset, cfg ValidatorConfig) (*Validator, error) {
	return TrainValidatorCtx(context.Background(), model, test, cfg)
}

// TrainValidatorCtx is TrainValidator with per-stage telemetry: a
// "train_validator" span (children: validator_setup, the internal
// predictor's own train_predictor subtree, validator_batches,
// validator_fit) on the tracer carried by ctx, plus the shared
// stage-duration histograms. Instrumentation never touches an RNG
// stream, so the trained validator is identical to TrainValidator's.
func TrainValidatorCtx(ctx context.Context, model data.Model, test *data.Dataset, cfg ValidatorConfig) (*Validator, error) {
	cfg.defaults()
	if model == nil {
		return nil, fmt.Errorf("core: model is required")
	}
	if len(cfg.Generators) == 0 {
		return nil, fmt.Errorf("core: at least one error generator is required")
	}
	if test.Len() == 0 {
		return nil, fmt.Errorf("core: empty test set")
	}

	ctx, root := obs.StartSpan(ctx, "train_validator")
	defer root.End()
	root.SetMetric("rows", float64(test.Len()))
	root.SetMetric("generators", float64(len(cfg.Generators)))
	root.SetMetric("workers", float64(resolveWorkers(cfg.Workers)))

	v := &Validator{model: model, cfg: cfg}
	// The KS reference Ŷtest and the synthetic training batches must come
	// from DISJOINT halves of the test data: real serving batches share no
	// rows with the reference, and a training batch that overlaps the
	// reference rows would make the clean regime look artificially
	// well-aligned (D biased toward 0), teaching the classifier to alarm
	// on every genuinely disjoint batch.
	_, _, setupDone := stageSpan(ctx, "validator_setup")
	refPart, batchPart := test.Split(0.5, jobRNG(cfg.Seed+20, streamValidatorSetup, 0))
	v.testOutputs = model.PredictProba(refPart)
	v.testScore = cfg.Score(model.PredictProba(test), test.Labels)
	setupDone()

	// The paper's validator "uses our performance predictions" as input:
	// train the regression predictor on the reference half (disjoint from
	// the batch half, so the estimate feature is out-of-sample for every
	// training batch, as it will be at serving time).
	var err error
	v.predictor, err = TrainPredictorCtx(ctx, model, refPart, PredictorConfig{
		Generators:  cfg.Generators,
		Repetitions: cfg.PredictorRepetitions,
		ForestSizes: []int{50},
		Score:       cfg.Score,
		Workers:     cfg.Workers,
		Seed:        cfg.Seed + 21,
	})
	if err != nil {
		return nil, fmt.Errorf("core: training the validator's internal predictor: %w", err)
	}

	// The synthetic batches are computed in parallel waves (batch b is a
	// pure function of cfg.Seed and b); the adaptive filtering below then
	// consumes them strictly in index order, so the training set is
	// bit-identical for every worker count.
	source := &validatorBatchSource{
		v:         v,
		mixture:   errorgen.Mixture{Generators: cfg.Generators},
		batchPart: batchPart,
		wave:      cfg.Batches,
	}
	line := (1 - cfg.Threshold) * v.testScore
	_, batchSp, batchDone := stageSpan(ctx, "validator_batches")
	batchRows := 0
	var feats [][]float64
	var labels []int
	for b := 0; b < cfg.Batches || len(labels) < cfg.Batches/2; b++ {
		if b >= 4*cfg.Batches {
			break // safety valve if nearly everything lands on the line
		}
		res := source.get(b)
		batchRows += res.size
		// Skip batches whose score lands within the sampling noise of the
		// decision line: their labels are coin flips that only teach the
		// classifier noise. (Binomial std of accuracy on a batch of size n.)
		noise := scoreNoise(res.score, res.size)
		if diff := res.score - line; diff > -noise && diff < noise {
			continue
		}
		label := 0
		if res.score < line {
			label = 1
			v.trainPos++
		}
		feats = append(feats, res.feats)
		labels = append(labels, label)
	}
	v.trainTotal = len(labels)
	if v.trainPos == 0 || v.trainPos == v.trainTotal {
		// Degenerate regime (e.g. errors that cannot move the score past
		// the line): fall back to including the borderline batches so the
		// classifier still sees both labels where possible.
		feats = feats[:0]
		labels = labels[:0]
		v.trainPos = 0
		for b := 0; b < cfg.Batches; b++ {
			res := source.get(b)
			label := 0
			if res.score < line {
				label = 1
				v.trainPos++
			}
			feats = append(feats, res.feats)
			labels = append(labels, label)
		}
		v.trainTotal = len(labels)
	}
	batchSp.SetMetric("batches", float64(v.trainTotal))
	batchSp.SetMetric("violations", float64(v.trainPos))
	batchSp.SetMetric("rows_scored", float64(batchRows))
	batchDone()

	_, _, fitDone := stageSpan(ctx, "validator_fit")
	v.clf = &models.GBDTClassifier{Trees: cfg.Trees, MaxDepth: cfg.Depth, Seed: cfg.Seed}
	err = v.clf.Fit(linalg.FromRows(feats), labels, 2)
	fitDone()
	if err != nil {
		return nil, fmt.Errorf("core: fitting validator classifier: %w", err)
	}
	return v, nil
}

// scoreNoise returns one binomial standard deviation of an accuracy-like
// score measured on a batch of n examples.
func scoreNoise(score float64, n int) float64 {
	if n < 1 {
		return 0
	}
	p := score
	if p < 0.05 {
		p = 0.05
	}
	if p > 0.95 {
		p = 0.95
	}
	return math.Sqrt(p * (1 - p) / float64(n))
}

// features assembles the validator's feature vector for one batch of
// model outputs: the regression predictor's score estimate together with
// its margin over the alarm line, and (unless disabled) the
// hypothesis-test statistics against the retained test outputs. The raw
// output percentiles are deliberately NOT included: they encode "was the
// batch corrupted at all", which correlates with — but is not — the
// question "did the score drop more than t", and a classifier given both
// signals overfits the former (corruption of a robust model often leaves
// its accuracy intact).
func (v *Validator) features(proba *linalg.Matrix) []float64 {
	estimate := v.predictor.EstimateFromProba(proba)
	f := []float64{estimate, estimate - (1-v.cfg.Threshold)*v.testScore}
	if !v.cfg.DisableKSFeatures {
		f = append(f, ksFeatures(v.testOutputs, proba)...)
	}
	return f
}

// Violation reports whether the validator predicts that the model's score
// on the serving batch dropped by more than the threshold. The companion
// boolean convention matches the baselines: true = raise an alarm.
func (v *Validator) Violation(serving *data.Dataset) bool {
	return v.ViolationFromProba(v.model.PredictProba(serving))
}

// ViolationFromProba is Violation for callers already holding the model
// outputs.
func (v *Validator) ViolationFromProba(proba *linalg.Matrix) bool {
	X := linalg.FromRows([][]float64{v.features(proba)})
	out := v.clf.PredictProba(X)
	return out.At(0, 1) >= 0.5
}

// TestScore returns the clean-test reference score.
func (v *Validator) TestScore() float64 { return v.testScore }

// Threshold returns the configured acceptable relative drop.
func (v *Validator) Threshold() float64 { return v.cfg.Threshold }

// TrainBalance reports how many of the synthetic training batches were
// violations, out of the total — useful for diagnosing degenerate
// training regimes.
func (v *Validator) TrainBalance() (violations, total int) {
	return v.trainPos, v.trainTotal
}

// ViolationProbability returns the validator classifier's probability
// that the serving batch violates the threshold, for callers that want to
// apply their own alarm cutoff or inspect calibration.
func (v *Validator) ViolationProbability(proba *linalg.Matrix) float64 {
	X := linalg.FromRows([][]float64{v.features(proba)})
	return v.clf.PredictProba(X).At(0, 1)
}
