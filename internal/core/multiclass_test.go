package core

import (
	"math"
	"math/rand"
	"testing"

	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/models"
)

// The paper's datasets are all binary; these tests verify that the whole
// validation stack — percentile features, predictor, validator and the
// multiclass softmax-boosted black box — works for three classes too.

func TestPredictorMulticlassEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ds := datagen.Products(4500, 31).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	model, err := models.TrainPipeline(train, &models.GBDTClassifier{Trees: 25, Seed: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	testProba := model.PredictProba(test)
	if testProba.Cols != 3 {
		t.Fatalf("proba columns = %d, want 3", testProba.Cols)
	}
	if acc := AccuracyScore(testProba, test.Labels); acc < 0.55 {
		t.Fatalf("3-class accuracy = %v, want clearly above the 0.33 chance level", acc)
	}

	// Percentile features: one block per class.
	feats := PredictionStatistics(testProba, 5)
	if len(feats) != 63 {
		t.Fatalf("feature count = %d, want 63 (21 x 3 classes)", len(feats))
	}

	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 25,
		ForestSizes: []int{40},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Clean estimate close to truth.
	proba := model.PredictProba(serving)
	truth := AccuracyScore(proba, serving.Labels)
	if diff := math.Abs(pred.EstimateFromProba(proba) - truth); diff > 0.08 {
		t.Fatalf("clean 3-class estimate off by %v", diff)
	}
	// Catastrophic corruption detected.
	broken := errorgen.Scaling{}.Corrupt(serving, 0.95, rng)
	bp := model.PredictProba(broken)
	bTruth := AccuracyScore(bp, broken.Labels)
	bEst := pred.EstimateFromProba(bp)
	if bTruth < truth-0.1 && bEst > truth-0.05 {
		t.Fatalf("3-class predictor missed a drop: est %v, truth %v (clean %v)", bEst, bTruth, truth)
	}
}

func TestValidatorMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	ds := datagen.Products(4000, 32).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 15, Seed: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	val, err := TrainValidator(model, test, ValidatorConfig{
		Generators: errorgen.KnownTabular(),
		Threshold:  0.1,
		Batches:    100,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if val.Violation(serving) {
		t.Fatal("clean 3-class serving data flagged")
	}
	broken := errorgen.Scaling{}.Corrupt(serving, 0.95, rng)
	proba := model.PredictProba(broken)
	if AccuracyScore(proba, broken.Labels) < 0.9*val.TestScore() && !val.ViolationFromProba(proba) {
		t.Fatal("catastrophic 3-class corruption not flagged")
	}
}
