package core

// Worker-pool construction of the corruption meta-dataset (lines 3-12 of
// Algorithm 1) and of the validator's synthetic training batches. The
// serial loops these replace shared one *rand.Rand across all batches,
// which made the draws of batch k depend on every batch before it — and
// made any parallel execution either racy or nondeterministic.
//
// The determinism contract: the (generator, repetition) grid is split
// into independent jobs, and every job derives its own rand.Rand from
// (cfg.Seed, stream tag, job index) via a splitmix64 hash. Job j's draws
// therefore never depend on how many workers run, how the scheduler
// interleaves them, or what any other job drew. Results are written into
// pre-sized slices at the job's own index, so the assembled meta-dataset
// is bit-identical for every Workers value, including Workers=1 (which
// runs the jobs inline, in index order, with no goroutines).

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"blackboxval/internal/data"
	"blackboxval/internal/errorgen"
)

// RNG stream tags. Each training phase draws from its own stream so that
// resizing one phase (e.g. more repetitions) never shifts the randomness
// of another.
const (
	streamPredictorMeta int64 = iota + 1
	streamPredictorGrid
	streamPredictorCalib
	streamValidatorSetup
	streamValidatorBatch
)

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014). It
// bijectively scrambles its input, so distinct (seed, stream, job)
// triples map to well-separated seeds even when user seeds are small
// consecutive integers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jobSeed derives the RNG seed for one (seed, stream, job) triple.
func jobSeed(seed, stream int64, job int) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ splitmix64(uint64(stream)))
	h = splitmix64(h ^ splitmix64(uint64(job)))
	return int64(h)
}

// jobRNG returns the private random source of one job. Two calls with the
// same triple return generators that produce identical sequences; calls
// with different triples are statistically independent.
func jobRNG(seed, stream int64, job int) *rand.Rand {
	return rand.New(rand.NewSource(jobSeed(seed, stream, job)))
}

// resolveWorkers maps the Workers config knob to a concrete pool size:
// zero (the zero value) means "use every core".
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// runJobs executes fn(0), ..., fn(n-1) across a pool of `workers`
// goroutines. fn must be safe to call concurrently and must only write
// into its own job's slots; under that contract the overall result is
// identical for every worker count. workers <= 1 runs inline in index
// order without spawning goroutines, preserving strictly serial
// execution for debugging and for single-core deployments.
func runJobs(workers, n int, fn func(job int)) {
	if n <= 0 {
		return
	}
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for j := 0; j < n; j++ {
			fn(j)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				fn(j)
			}
		}()
	}
	for j := 0; j < n; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
}

// metaExample is one row of the corruption meta-dataset M: the featurized
// model outputs on a synthetic serving batch, the true score on it, and
// the batch size (reported as the rows-scored telemetry).
type metaExample struct {
	feats []float64
	score float64
	size  int
}

// buildMetaDataset runs lines 3-12 of Algorithm 1: corrupt the held-out
// test set Generators x Repetitions times (plus CleanRepetitions
// uncorrupted batches), push every batch through the black box, and
// record (output percentiles, true score) pairs. Jobs run on
// cfg.Workers goroutines; job j covers generator j/Repetitions,
// repetition j%Repetitions, with clean batches at the tail of the index
// space. The returned slices are ordered by job index; rows is the total
// number of serving-batch rows scored, for throughput reporting.
func buildMetaDataset(model data.Model, test *data.Dataset, cfg PredictorConfig) (features [][]float64, scores []float64, rows int) {
	corrupted := len(cfg.Generators) * cfg.Repetitions
	n := corrupted + cfg.CleanRepetitions
	examples := make([]metaExample, n)
	runJobs(cfg.Workers, n, func(j int) {
		rng := jobRNG(cfg.Seed+10, streamPredictorMeta, j)
		var ds *data.Dataset
		if j < corrupted {
			gen := cfg.Generators[j/cfg.Repetitions]
			// Squaring the uniform draw skews the magnitude curriculum
			// toward small corruptions: the regression needs dense support
			// near the clean regime to resolve small score drops, while
			// heavy corruption saturates the model outputs anyway.
			magnitude := rng.Float64()
			magnitude *= magnitude
			ds = gen.Corrupt(SubsampleBatch(test, rng), magnitude, rng)
		} else {
			ds = SubsampleBatch(test, rng)
		}
		start := time.Now()
		proba := model.PredictProba(ds)
		feats := PredictionStatistics(proba, cfg.PercentileStep)
		featurizeDuration.Observe(time.Since(start).Seconds())
		metaExamples.Inc()
		rowsScored.Add(float64(ds.Len()))
		examples[j] = metaExample{
			feats: feats,
			score: cfg.Score(proba, ds.Labels),
			size:  ds.Len(),
		}
	})
	features = make([][]float64, n)
	scores = make([]float64, n)
	for j, ex := range examples {
		features[j] = ex.feats
		scores[j] = ex.score
		rows += ex.size
	}
	return features, scores, rows
}

// validatorBatch is one synthetic serving batch of validator training:
// the assembled feature vector, the true score, and the batch size
// (needed for the borderline-noise filter).
type validatorBatch struct {
	feats []float64
	score float64
	size  int
}

// validatorBatchSource computes the validator's synthetic training
// batches in parallel waves. Batch b is fully determined by
// (cfg.Seed, b): a job-local RNG subsamples the batch half, corrupts
// three out of four batches with the error mixture, and featurizes the
// model outputs. The adaptive label-filtering loop in TrainValidator then
// consumes batches strictly in index order, so its decisions — and the
// fitted classifier — are identical for every worker count.
type validatorBatchSource struct {
	v         *Validator
	mixture   errorgen.Mixture
	batchPart *data.Dataset
	wave      int // batches computed per wave
	results   []validatorBatch
}

// get returns batch b, computing further waves on demand.
func (s *validatorBatchSource) get(b int) validatorBatch {
	for b >= len(s.results) {
		lo := len(s.results)
		hi := lo + s.wave
		s.results = append(s.results, make([]validatorBatch, hi-lo)...)
		cfg := s.v.cfg
		runJobs(cfg.Workers, hi-lo, func(j int) {
			idx := lo + j
			rng := jobRNG(cfg.Seed+20, streamValidatorBatch, idx)
			batch := SubsampleBatch(s.batchPart, rng)
			if idx%4 != 0 {
				// three quarters corrupted, one quarter clean: anchors both
				// regimes of the decision
				batch = s.mixture.Corrupt(batch, rng.Float64(), rng)
			}
			rowsScored.Add(float64(batch.Len()))
			proba := s.v.model.PredictProba(batch)
			s.results[idx] = validatorBatch{
				feats: s.v.features(proba),
				score: cfg.Score(proba, batch.Labels),
				size:  batch.Len(),
			}
		})
	}
	return s.results[b]
}
