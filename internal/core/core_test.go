package core

import (
	"math"
	"math/rand"
	"testing"

	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/linalg"
	"blackboxval/internal/models"
	"blackboxval/internal/stats"
)

func TestPredictionStatisticsShape(t *testing.T) {
	proba := linalg.FromRows([][]float64{{0.2, 0.8}, {0.6, 0.4}, {0.5, 0.5}})
	feats := PredictionStatistics(proba, 5)
	if len(feats) != 42 { // 21 percentiles x 2 classes
		t.Fatalf("feature count = %d, want 42", len(feats))
	}
	// Percentiles of each class block are monotone.
	for c := 0; c < 2; c++ {
		block := feats[c*21 : (c+1)*21]
		for i := 1; i < len(block); i++ {
			if block[i] < block[i-1] {
				t.Fatalf("class %d percentile block not monotone: %v", c, block)
			}
		}
	}
	// Extremes match the data.
	if feats[0] != 0.2 || feats[20] != 0.6 {
		t.Fatalf("class-0 extremes = %v, %v", feats[0], feats[20])
	}
}

func TestPredictionStatisticsCoarseStep(t *testing.T) {
	proba := linalg.FromRows([][]float64{{0.1, 0.9}, {0.3, 0.7}})
	if got := len(PredictionStatistics(proba, 25)); got != 10 {
		t.Fatalf("coarse feature count = %d, want 10", got)
	}
}

func TestKSFeatures(t *testing.T) {
	a := linalg.FromRows([][]float64{{0.1, 0.9}, {0.2, 0.8}, {0.3, 0.7}})
	same := ksFeatures(a, a)
	if len(same) != 4 {
		t.Fatalf("ks feature count = %d", len(same))
	}
	if same[0] != 0 || same[1] != 1 {
		t.Fatalf("identical distributions should give D=0 p=1, got %v", same)
	}
}

// trainBlackBox builds a small lr pipeline on the income data.
func trainBlackBox(t *testing.T, train *data.Dataset) data.Model {
	t.Helper()
	model, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 15, Seed: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func incomeSplits(t *testing.T, n int, seed int64) (train, test, serving *data.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := datagen.Income(n, seed).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test = source.Split(0.6, rng)
	return train, test, serving
}

func TestTrainPredictorConfigErrors(t *testing.T) {
	train, test, _ := incomeSplits(t, 600, 1)
	model := trainBlackBox(t, train)
	if _, err := TrainPredictor(nil, test, PredictorConfig{Generators: errorgen.KnownTabular()}); err == nil {
		t.Fatal("nil model should error")
	}
	if _, err := TrainPredictor(model, test, PredictorConfig{}); err == nil {
		t.Fatal("no generators should error")
	}
	empty := test.SelectRows(nil)
	if _, err := TrainPredictor(model, empty, PredictorConfig{Generators: errorgen.KnownTabular()}); err == nil {
		t.Fatal("empty test set should error")
	}
}

func TestPredictorEndToEndKnownErrors(t *testing.T) {
	train, test, serving := incomeSplits(t, 3000, 2)
	model := trainBlackBox(t, train)

	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  []errorgen.Generator{errorgen.MissingValues{}, errorgen.Scaling{}},
		Repetitions: 40,
		ForestSizes: []int{50},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.TestScore() < 0.7 {
		t.Fatalf("black box test accuracy = %v, too weak for a meaningful test", pred.TestScore())
	}

	rng := rand.New(rand.NewSource(3))
	var absErrs []float64
	for trial := 0; trial < 10; trial++ {
		gen := errorgen.MissingValues{}
		corrupted := gen.Corrupt(serving, rng.Float64(), rng)
		proba := model.PredictProba(corrupted)
		truth := AccuracyScore(proba, corrupted.Labels)
		est := pred.EstimateFromProba(proba)
		absErrs = append(absErrs, math.Abs(est-truth))
	}
	med := stats.Median(absErrs)
	if med > 0.05 {
		t.Fatalf("median abs error = %v, want <= 0.05 (errors: %v)", med, absErrs)
	}
}

func TestPredictorCleanServingMatchesTestScore(t *testing.T) {
	train, test, serving := incomeSplits(t, 2000, 4)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  []errorgen.Generator{errorgen.MissingValues{}},
		Repetitions: 30,
		ForestSizes: []int{50},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	est := pred.Estimate(serving)
	proba := model.PredictProba(serving)
	truth := AccuracyScore(proba, serving.Labels)
	if math.Abs(est-truth) > 0.06 {
		t.Fatalf("clean serving estimate %v vs truth %v", est, truth)
	}
}

func TestPredictorEstimateBounded(t *testing.T) {
	train, test, _ := incomeSplits(t, 800, 5)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  []errorgen.Generator{errorgen.MissingValues{}},
		Repetitions: 10,
		ForestSizes: []int{20},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate outputs must still give a bounded estimate.
	weird := linalg.FromRows([][]float64{{1, 0}, {1, 0}, {0, 1}})
	est := pred.EstimateFromProba(weird)
	if est < 0 || est > 1 {
		t.Fatalf("estimate %v out of [0,1]", est)
	}
}

func TestPredictorAUCScore(t *testing.T) {
	train, test, serving := incomeSplits(t, 2000, 6)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  []errorgen.Generator{errorgen.MissingValues{}},
		Repetitions: 30,
		ForestSizes: []int{50},
		Score:       AUCScore,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	proba := model.PredictProba(serving)
	truth := AUCScore(proba, serving.Labels)
	est := pred.EstimateFromProba(proba)
	if math.Abs(est-truth) > 0.08 {
		t.Fatalf("AUC estimate %v vs truth %v", est, truth)
	}
}

func TestPredictorRecordsMetadata(t *testing.T) {
	train, test, _ := incomeSplits(t, 800, 7)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:       []errorgen.Generator{errorgen.MissingValues{}, errorgen.Outliers{}},
		Repetitions:      12,
		CleanRepetitions: 6,
		ForestSizes:      []int{20},
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.NumExamples() != 2*12+6 {
		t.Fatalf("NumExamples = %d, want 30", pred.NumExamples())
	}
	if pred.TrainMAE() < 0 || pred.TrainMAE() > 0.5 {
		t.Fatalf("implausible train MAE %v", pred.TrainMAE())
	}
	if pred.Model() != model {
		t.Fatal("Model() should return the wrapped black box")
	}
	if pred.TestOutputs() == nil || pred.TestOutputs().Cols != 2 {
		t.Fatal("TestOutputs missing")
	}
}

func TestValidatorEndToEnd(t *testing.T) {
	train, test, serving := incomeSplits(t, 3000, 8)
	model := trainBlackBox(t, train)
	val, err := TrainValidator(model, test, ValidatorConfig{
		Generators: errorgen.KnownTabular(),
		Threshold:  0.05,
		Batches:    120,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos, total := val.TrainBalance()
	if pos == 0 || pos == total {
		t.Fatalf("degenerate training balance: %d/%d", pos, total)
	}

	rng := rand.New(rand.NewSource(9))
	mixture := errorgen.Mixture{Generators: errorgen.KnownTabular()}
	var predLabels, truthLabels []int
	for trial := 0; trial < 30; trial++ {
		var batch *data.Dataset
		if trial%3 == 0 {
			batch = serving
		} else {
			batch = mixture.Corrupt(serving, rng.Float64(), rng)
		}
		proba := model.PredictProba(batch)
		truth := 0
		if AccuracyScore(proba, batch.Labels) < (1-val.Threshold())*val.TestScore() {
			truth = 1
		}
		pred := 0
		if val.ViolationFromProba(proba) {
			pred = 1
		}
		predLabels = append(predLabels, pred)
		truthLabels = append(truthLabels, truth)
	}
	f1 := stats.F1Score(predLabels, truthLabels, 1)
	acc := stats.Accuracy(predLabels, truthLabels)
	if acc < 0.7 {
		t.Fatalf("validator accuracy = %v (F1 %v) on known mixtures", acc, f1)
	}
}

func TestValidatorConfigErrors(t *testing.T) {
	train, test, _ := incomeSplits(t, 600, 10)
	model := trainBlackBox(t, train)
	if _, err := TrainValidator(nil, test, ValidatorConfig{Generators: errorgen.KnownTabular()}); err == nil {
		t.Fatal("nil model should error")
	}
	if _, err := TrainValidator(model, test, ValidatorConfig{}); err == nil {
		t.Fatal("no generators should error")
	}
}

func TestValidatorCleanDataNotFlagged(t *testing.T) {
	train, test, serving := incomeSplits(t, 2500, 11)
	model := trainBlackBox(t, train)
	val, err := TrainValidator(model, test, ValidatorConfig{
		Generators: errorgen.KnownTabular(),
		Threshold:  0.1,
		Batches:    120,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if val.Violation(serving) {
		t.Fatal("clean serving data flagged as violation at t=0.1")
	}
}

func TestPredictorForestGridSearch(t *testing.T) {
	train, test, serving := incomeSplits(t, 1500, 12)
	model := trainBlackBox(t, train)
	// Two forest sizes exercise the cross-validated grid search path.
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  []errorgen.Generator{errorgen.MissingValues{}},
		Repetitions: 12,
		ForestSizes: []int{10, 30},
		Folds:       3,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.TrainMAE() <= 0 || pred.TrainMAE() > 0.5 {
		t.Fatalf("cross-validated MAE = %v", pred.TrainMAE())
	}
	est := pred.Estimate(serving)
	if est < 0 || est > 1 {
		t.Fatalf("estimate = %v", est)
	}
}

func TestPredictorCustomRegressor(t *testing.T) {
	train, test, _ := incomeSplits(t, 1200, 13)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  []errorgen.Generator{errorgen.MissingValues{}},
		Repetitions: 10,
		Regressor:   &models.GBDTRegressor{Trees: 30, Seed: 1},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	proba := model.PredictProba(test)
	est := pred.EstimateFromProba(proba)
	if math.Abs(est-pred.TestScore()) > 0.1 {
		t.Fatalf("GBDT-backed estimate %v far from test score %v", est, pred.TestScore())
	}
}

func TestAccuracyAndAUCScoreFuncs(t *testing.T) {
	proba := linalg.FromRows([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	if AccuracyScore(proba, []int{0, 1}) != 1 {
		t.Fatal("accuracy score wrong")
	}
	if AUCScore(proba, []int{0, 1}) != 1 {
		t.Fatal("AUC score wrong")
	}
}

func TestEstimateWithUncertainty(t *testing.T) {
	train, test, serving := incomeSplits(t, 2500, 14)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 20,
		ForestSizes: []int{40},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cleanProba := model.PredictProba(serving)
	cleanEst, cleanUnc := pred.EstimateWithUncertainty(cleanProba)
	if math.Abs(cleanEst-pred.EstimateFromProba(cleanProba)) > 1e-12 {
		t.Fatal("uncertainty-aware estimate should match the plain estimate")
	}
	if cleanUnc < 0 || cleanUnc > 0.5 {
		t.Fatalf("implausible clean uncertainty %v", cleanUnc)
	}

	// An alien corruption (never in training) should not report LESS
	// uncertainty than the clean batch, and typically reports much more.
	rng := rand.New(rand.NewSource(15))
	weird := errorgen.FlippedSigns{}.Corrupt(serving, 1.0, rng)
	weird = errorgen.Typos{}.Corrupt(weird, 1.0, rng)
	_, weirdUnc := pred.EstimateWithUncertainty(model.PredictProba(weird))
	if weirdUnc < cleanUnc*0.5 {
		t.Fatalf("alien corruption uncertainty %v far below clean %v", weirdUnc, cleanUnc)
	}
}

func TestEstimateWithUncertaintyGBDTFallback(t *testing.T) {
	train, test, serving := incomeSplits(t, 1200, 16)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 8,
		Regressor:   &models.GBDTRegressor{Trees: 20, Seed: 1},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, unc := pred.EstimateWithUncertainty(model.PredictProba(serving))
	if unc != 0 {
		t.Fatalf("non-forest regressor should report zero uncertainty, got %v", unc)
	}
}

func TestEstimateIntervalCoverage(t *testing.T) {
	train, test, serving := incomeSplits(t, 3000, 17)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 40,
		ForestSizes: []int{50},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	mixture := errorgen.Mixture{Generators: errorgen.KnownTabular()}
	covered, trials := 0, 40
	for i := 0; i < trials; i++ {
		batch := mixture.Corrupt(serving, rng.Float64(), rng)
		proba := model.PredictProba(batch)
		truth := AccuracyScore(proba, batch.Labels)
		est, lo, hi := pred.EstimateInterval(proba, 0.1)
		if lo > est || hi < est {
			t.Fatalf("interval [%v,%v] excludes its own estimate %v", lo, hi, est)
		}
		if lo <= truth && truth <= hi {
			covered++
		}
	}
	// Nominal 90% coverage; accept >= 70% given the train/serve partition gap.
	if float64(covered)/float64(trials) < 0.7 {
		t.Fatalf("interval covered truth in only %d/%d trials", covered, trials)
	}
}

func TestEstimateIntervalBounds(t *testing.T) {
	train, test, serving := incomeSplits(t, 1200, 19)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 15,
		ForestSizes: []int{20},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	proba := model.PredictProba(serving)
	_, lo, hi := pred.EstimateInterval(proba, 0.05)
	if lo < 0 || hi > 1 || lo > hi {
		t.Fatalf("interval [%v,%v] malformed", lo, hi)
	}
	// Wider alpha -> narrower interval.
	_, lo2, hi2 := pred.EstimateInterval(proba, 0.5)
	if hi2-lo2 > hi-lo+1e-12 {
		t.Fatalf("alpha 0.5 interval wider than alpha 0.05: %v vs %v", hi2-lo2, hi-lo)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha out of range")
		}
	}()
	pred.EstimateInterval(proba, 1.5)
}
