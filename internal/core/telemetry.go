package core

// Training telemetry. Stage timings land in two places: the span tree
// carried by the caller's context (per-run wall-time breakdown, exported
// by ppm-bench and /debug/spans) and the process-global metric registry
// (cross-run histograms, scraped at /metrics). Instrumentation only
// reads the clock — it never touches an RNG stream, so the determinism
// contract of parallel.go is unaffected.

import (
	"context"

	"blackboxval/internal/obs"
)

var (
	stageDuration = obs.Default().HistogramVec(
		"ppm_training_stage_duration_seconds",
		"Wall time of each training pipeline stage.",
		obs.DurationBuckets, "stage")
	featurizeDuration = obs.Default().Histogram(
		"ppm_featurize_duration_seconds",
		"Per-batch wall time of black-box scoring plus output featurization during meta-dataset construction.",
		obs.DurationBuckets)
	metaExamples = obs.Default().Counter(
		"ppm_meta_examples_total",
		"Synthetic meta-dataset examples generated across all predictor trainings.")
	rowsScored = obs.Default().Counter(
		"ppm_rows_scored_total",
		"Synthetic serving-batch rows pushed through the black box during training.")
)

// stageSpan opens a child span named after the pipeline stage and
// returns a completion func that closes the span and feeds the shared
// stage-duration histogram. The span is returned for callers that
// attach result metrics (example counts, worker counts) before done().
func stageSpan(ctx context.Context, stage string) (context.Context, *obs.Span, func()) {
	ctx, sp := obs.StartSpan(ctx, stage)
	return ctx, sp, func() {
		sp.End()
		stageDuration.Observe(sp.Duration().Seconds(), stage)
	}
}
