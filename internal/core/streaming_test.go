package core

import (
	"math"
	"math/rand"
	"testing"

	"blackboxval/internal/errorgen"
	"blackboxval/internal/linalg"
)

func TestStreamAccumulatorMatchesBatchFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n := 8000
	proba := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		p := rng.Float64()
		proba.Set(i, 0, p)
		proba.Set(i, 1, 1-p)
	}
	exact := PredictionStatistics(proba, 5)

	acc := NewStreamAccumulator(2, 5)
	for i := 0; i < n; i++ {
		acc.Add(proba.Row(i))
	}
	approx := acc.Features()
	if len(approx) != len(exact) {
		t.Fatalf("feature count %d vs %d", len(approx), len(exact))
	}
	for i := range exact {
		if math.Abs(approx[i]-exact[i]) > 0.02 {
			t.Fatalf("feature %d: stream %v vs exact %v", i, approx[i], exact[i])
		}
	}
	if acc.Count() != n {
		t.Fatalf("count = %d", acc.Count())
	}
}

func TestStreamAccumulatorReset(t *testing.T) {
	acc := NewStreamAccumulator(2, 25)
	acc.Add([]float64{0.7, 0.3})
	acc.Reset()
	if acc.Count() != 0 {
		t.Fatal("reset did not clear the accumulator")
	}
	for _, v := range acc.Features() {
		if v != 0 {
			t.Fatal("reset accumulator should featurize to zeros")
		}
	}
}

func TestStreamAccumulatorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1 class")
		}
	}()
	NewStreamAccumulator(1, 5)
}

func TestStreamAccumulatorRowWidthPanic(t *testing.T) {
	acc := NewStreamAccumulator(2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong row width")
		}
	}()
	acc.Add([]float64{0.5, 0.3, 0.2})
}

func TestPredictorStreamingEstimateMatchesBatch(t *testing.T) {
	train, test, serving := incomeSplits(t, 2500, 52)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 20,
		ForestSizes: []int{30},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	proba := model.PredictProba(serving)
	batchEst := pred.EstimateFromProba(proba)

	acc := pred.NewStreamAccumulator()
	for i := 0; i < proba.Rows; i++ {
		acc.Add(proba.Row(i))
	}
	streamEst := pred.EstimateFromFeatures(acc.Features())
	if math.Abs(streamEst-batchEst) > 0.03 {
		t.Fatalf("stream estimate %v far from batch estimate %v", streamEst, batchEst)
	}
}

func TestPredictorStreamingDetectsCorruption(t *testing.T) {
	train, test, serving := incomeSplits(t, 2500, 53)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 20,
		ForestSizes: []int{30},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(54))
	broken := errorgen.Scaling{}.Corrupt(serving, 0.95, rng)
	proba := model.PredictProba(broken)
	truth := AccuracyScore(proba, broken.Labels)

	acc := pred.NewStreamAccumulator()
	for i := 0; i < proba.Rows; i++ {
		acc.Add(proba.Row(i))
	}
	streamEst := pred.EstimateFromFeatures(acc.Features())
	if truth < pred.TestScore()-0.1 && streamEst > pred.TestScore()-0.05 {
		t.Fatalf("streaming estimate %v missed a drop to %v", streamEst, truth)
	}
}
