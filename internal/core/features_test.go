package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
)

func makeLabeled(n int) *data.Dataset {
	x := make([]float64, n)
	labels := make([]int, n)
	for i := range x {
		x[i] = float64(i)
		labels[i] = i % 2
	}
	return &data.Dataset{
		Frame:   frame.New().AddNumeric("x", x),
		Labels:  labels,
		Classes: []string{"a", "b"},
	}
}

func TestSubsampleBatchSizesWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := makeLabeled(100)
		b := SubsampleBatch(ds, rng)
		// size within [50, 200] per the documented 0.5x..2x range
		return b.Len() >= 50 && b.Len() <= 200
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubsampleBatchPreservesSchemaAndLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := makeLabeled(60)
	b := SubsampleBatch(ds, rng)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every sampled row must carry a label consistent with its x value
	// (x even <-> label 0 in the source construction).
	for i := 0; i < b.Len(); i++ {
		x := int(b.Frame.Column("x").Num[i])
		if x%2 != b.Labels[i] {
			t.Fatalf("row %d: x=%d label=%d", i, x, b.Labels[i])
		}
	}
}

func TestSubsampleBatchJittersComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := makeLabeled(400)
	sawSkew := false
	for trial := 0; trial < 40; trial++ {
		b := SubsampleBatch(ds, rng)
		counts := b.ClassCounts()
		frac := float64(counts[0]) / float64(b.Len())
		if math.Abs(frac-0.5) > 0.03 {
			sawSkew = true
		}
		if frac < 0.2 || frac > 0.8 {
			t.Fatalf("composition jitter too extreme: %v", frac)
		}
	}
	if !sawSkew {
		t.Fatal("composition never varied beyond 3% in 40 draws")
	}
}

func TestSubsampleBatchTinyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := makeLabeled(2)
	b := SubsampleBatch(ds, rng)
	if b.Len() < 1 {
		t.Fatal("subsample of a tiny dataset must not be empty")
	}
}

func TestScoreNoise(t *testing.T) {
	// Binomial: sqrt(0.5*0.5/100) = 0.05.
	if got := scoreNoise(0.5, 100); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("scoreNoise(0.5,100) = %v", got)
	}
	// Clamped extremes avoid a zero band.
	if scoreNoise(1.0, 100) <= 0 || scoreNoise(0, 100) <= 0 {
		t.Fatal("extreme scores should still yield positive noise")
	}
	if scoreNoise(0.5, 0) != 0 {
		t.Fatal("empty batch noise should be 0")
	}
	// Noise shrinks with batch size.
	if scoreNoise(0.8, 1000) >= scoreNoise(0.8, 100) {
		t.Fatal("noise must shrink with n")
	}
}
