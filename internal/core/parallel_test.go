package core

import (
	"math"
	"sync/atomic"
	"testing"

	"blackboxval/internal/data"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/linalg"
)

// workerGrid is the worker counts every determinism test sweeps: strictly
// serial, a small pool, and an oversubscribed pool (more workers than
// this container has cores, so the scheduler interleaves them).
var workerGrid = []int{1, 2, 8}

func TestJobSeedDistinctAcrossStreamsAndJobs(t *testing.T) {
	seen := make(map[int64][2]int64)
	for _, stream := range []int64{streamPredictorMeta, streamPredictorGrid, streamPredictorCalib, streamValidatorSetup, streamValidatorBatch} {
		for job := 0; job < 4096; job++ {
			s := jobSeed(1, stream, job)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (stream=%d, job=%d) and (stream=%d, job=%d) both map to %d",
					stream, int64(job), prev[0], prev[1], s)
			}
			seen[s] = [2]int64{stream, int64(job)}
		}
	}
	// Nearby user seeds must not alias either (splitmix64 scrambles them).
	if jobSeed(1, streamPredictorMeta, 0) == jobSeed(2, streamPredictorMeta, 0) {
		t.Fatal("consecutive user seeds alias the same job seed")
	}
}

func TestJobRNGReproducible(t *testing.T) {
	a := jobRNG(7, streamPredictorMeta, 3)
	b := jobRNG(7, streamPredictorMeta, 3)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("draw %d differs between two RNGs derived from the same triple", i)
		}
	}
}

// TestJobRNGIsolationUnderConcurrency is the shared-RNG audit: every job
// derives its own generator, so the sequence a job observes must be
// independent of which other jobs run, in what order, and on how many
// workers. If any job's draws leaked into another's (the hazard of the
// old shared *rand.Rand), the concurrent sequences would diverge from
// the serially recorded ones.
func TestJobRNGIsolationUnderConcurrency(t *testing.T) {
	const jobs, draws = 64, 50
	expected := make([][]float64, jobs)
	for j := 0; j < jobs; j++ {
		rng := jobRNG(1, streamPredictorMeta, j)
		for d := 0; d < draws; d++ {
			expected[j] = append(expected[j], rng.Float64())
		}
	}
	for _, workers := range workerGrid {
		got := make([][]float64, jobs)
		runJobs(workers, jobs, func(j int) {
			rng := jobRNG(1, streamPredictorMeta, j)
			seq := make([]float64, 0, draws)
			for d := 0; d < draws; d++ {
				seq = append(seq, rng.Float64())
			}
			got[j] = seq
		})
		for j := range expected {
			for d := range expected[j] {
				if got[j][d] != expected[j][d] {
					t.Fatalf("workers=%d: job %d draw %d = %v, want %v (cross-job RNG leakage)",
						workers, j, d, got[j][d], expected[j][d])
				}
			}
		}
	}
}

func TestRunJobsExecutesEveryJobExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 137
		counts := make([]int64, n)
		runJobs(workers, n, func(j int) {
			atomic.AddInt64(&counts[j], 1)
		})
		for j, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, j, c)
			}
		}
	}
	runJobs(4, 0, func(int) { t.Fatal("no jobs should run for n=0") })
}

// predictorFixture trains the shared black box and splits once per test.
func predictorFixture(t *testing.T, seed int64) (data.Model, *data.Dataset, *data.Dataset) {
	t.Helper()
	train, test, serving := incomeSplits(t, 1200, seed)
	return trainBlackBox(t, train), test, serving
}

func trainPredictorWithWorkers(t *testing.T, model data.Model, test *data.Dataset, workers int) *Predictor {
	t.Helper()
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  []errorgen.Generator{errorgen.MissingValues{}, errorgen.Scaling{}},
		Repetitions: 10,
		ForestSizes: []int{10, 20},
		Folds:       3,
		Workers:     workers,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

// TestBuildMetaDatasetWorkerInvariance checks the meta-dataset itself —
// every feature vector and every score — is bit-identical for any worker
// count, which is the contract everything downstream relies on.
func TestBuildMetaDatasetWorkerInvariance(t *testing.T) {
	model, test, _ := predictorFixture(t, 21)
	cfg := PredictorConfig{
		Generators:  []errorgen.Generator{errorgen.MissingValues{}, errorgen.Outliers{}},
		Repetitions: 8,
		Seed:        5,
	}
	cfg.defaults()
	base := cfg
	base.Workers = 1
	wantFeats, wantScores, wantRows := buildMetaDataset(model, test, base)
	if len(wantScores) != 2*8+cfg.CleanRepetitions {
		t.Fatalf("meta-dataset has %d rows", len(wantScores))
	}
	for _, workers := range append([]int{0}, workerGrid...) {
		c := cfg
		c.Workers = workers
		feats, scores, rows := buildMetaDataset(model, test, c)
		if len(feats) != len(wantFeats) || len(scores) != len(wantScores) {
			t.Fatalf("workers=%d: meta-dataset size %d/%d, want %d/%d",
				workers, len(feats), len(scores), len(wantFeats), len(wantScores))
		}
		if rows != wantRows {
			t.Fatalf("workers=%d: rows scored = %d, want %d", workers, rows, wantRows)
		}
		for i := range wantScores {
			if scores[i] != wantScores[i] {
				t.Fatalf("workers=%d: score %d = %v, want %v", workers, i, scores[i], wantScores[i])
			}
			for k := range wantFeats[i] {
				if feats[i][k] != wantFeats[i][k] {
					t.Fatalf("workers=%d: feature [%d][%d] = %v, want %v",
						workers, i, k, feats[i][k], wantFeats[i][k])
				}
			}
		}
	}
}

// servingProbas returns a few serving batches (clean and corrupted) to
// probe trained predictors/validators with.
func servingProbas(model data.Model, serving *data.Dataset) []*linalg.Matrix {
	probas := []*linalg.Matrix{model.PredictProba(serving)}
	for i, gen := range []errorgen.Generator{errorgen.MissingValues{}, errorgen.Scaling{}, errorgen.Typos{}} {
		rng := jobRNG(99, int64(100+i), 0)
		probas = append(probas, model.PredictProba(gen.Corrupt(serving, 0.3+0.2*float64(i), rng)))
	}
	return probas
}

func TestTrainPredictorParallelMatchesSerial(t *testing.T) {
	model, test, serving := predictorFixture(t, 22)
	serial := trainPredictorWithWorkers(t, model, test, 1)
	probas := servingProbas(model, serving)

	check := func(workers int, pred *Predictor) {
		t.Helper()
		if pred.NumExamples() != serial.NumExamples() {
			t.Fatalf("workers=%d: NumExamples %d != %d", workers, pred.NumExamples(), serial.NumExamples())
		}
		if pred.TrainMAE() != serial.TrainMAE() {
			t.Fatalf("workers=%d: TrainMAE %v != %v (grid search diverged)", workers, pred.TrainMAE(), serial.TrainMAE())
		}
		if len(pred.calibResiduals) != len(serial.calibResiduals) {
			t.Fatalf("workers=%d: %d calibration residuals, want %d",
				workers, len(pred.calibResiduals), len(serial.calibResiduals))
		}
		for i := range serial.calibResiduals {
			if pred.calibResiduals[i] != serial.calibResiduals[i] {
				t.Fatalf("workers=%d: calibration residual %d = %v, want %v",
					workers, i, pred.calibResiduals[i], serial.calibResiduals[i])
			}
		}
		for i, proba := range probas {
			got, want := pred.EstimateFromProba(proba), serial.EstimateFromProba(proba)
			if got != want {
				t.Fatalf("workers=%d: estimate on batch %d = %v, want %v (bit-identical)", workers, i, got, want)
			}
			gotEst, gotUnc := pred.EstimateWithUncertainty(proba)
			wantEst, wantUnc := serial.EstimateWithUncertainty(proba)
			if gotEst != wantEst || gotUnc != wantUnc {
				t.Fatalf("workers=%d: uncertainty-aware estimate (%v, %v) != (%v, %v)",
					workers, gotEst, gotUnc, wantEst, wantUnc)
			}
			_, gotLo, gotHi := pred.EstimateInterval(proba, 0.1)
			_, wantLo, wantHi := serial.EstimateInterval(proba, 0.1)
			if gotLo != wantLo || gotHi != wantHi {
				t.Fatalf("workers=%d: interval [%v,%v] != [%v,%v]", workers, gotLo, gotHi, wantLo, wantHi)
			}
		}
	}
	for _, workers := range append([]int{0}, workerGrid...) {
		check(workers, trainPredictorWithWorkers(t, model, test, workers))
	}
	// Determinism across repeated runs at the same worker count.
	check(8, trainPredictorWithWorkers(t, model, test, 8))
}

func TestTrainValidatorParallelMatchesSerial(t *testing.T) {
	model, test, serving := predictorFixture(t, 23)
	trainVal := func(workers int) *Validator {
		t.Helper()
		val, err := TrainValidator(model, test, ValidatorConfig{
			Generators:           errorgen.KnownTabular(),
			Threshold:            0.05,
			Batches:              60,
			PredictorRepetitions: 8,
			Workers:              workers,
			Seed:                 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return val
	}
	serial := trainVal(1)
	serialPos, serialTotal := serial.TrainBalance()
	probas := servingProbas(model, serving)

	for _, workers := range append([]int{0}, workerGrid...) {
		val := trainVal(workers)
		pos, total := val.TrainBalance()
		if pos != serialPos || total != serialTotal {
			t.Fatalf("workers=%d: training balance %d/%d, want %d/%d (batch grid diverged)",
				workers, pos, total, serialPos, serialTotal)
		}
		if val.TestScore() != serial.TestScore() {
			t.Fatalf("workers=%d: test score %v != %v", workers, val.TestScore(), serial.TestScore())
		}
		for i, proba := range probas {
			got, want := val.ViolationProbability(proba), serial.ViolationProbability(proba)
			if got != want {
				t.Fatalf("workers=%d: violation probability on batch %d = %v, want %v (bit-identical)",
					workers, i, got, want)
			}
			if val.ViolationFromProba(proba) != serial.ViolationFromProba(proba) {
				t.Fatalf("workers=%d: violation decision on batch %d diverged", workers, i)
			}
		}
	}
}

// TestParallelPredictorStillAccurate guards against the RNG restructuring
// silently destroying predictor quality: the per-job streams must sample
// the same corruption curriculum the serial shared-RNG loop did.
func TestParallelPredictorStillAccurate(t *testing.T) {
	train, test, serving := incomeSplits(t, 3000, 24)
	model := trainBlackBox(t, train)
	pred, err := TrainPredictor(model, test, PredictorConfig{
		Generators:  []errorgen.Generator{errorgen.MissingValues{}, errorgen.Scaling{}},
		Repetitions: 40,
		ForestSizes: []int{50},
		Workers:     8,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := jobRNG(25, 200, 0)
	var absErrs []float64
	for trial := 0; trial < 10; trial++ {
		corrupted := errorgen.MissingValues{}.Corrupt(serving, rng.Float64(), rng)
		proba := model.PredictProba(corrupted)
		absErrs = append(absErrs, math.Abs(pred.EstimateFromProba(proba)-AccuracyScore(proba, corrupted.Labels)))
	}
	worst := 0.0
	for _, e := range absErrs {
		if e > worst {
			worst = e
		}
	}
	if worst > 0.15 {
		t.Fatalf("parallel-trained predictor inaccurate: worst abs error %v (errors %v)", worst, absErrs)
	}
}
