// Package core implements the paper's contribution: learning to validate
// the predictions of black box classifiers on unseen data. A Predictor
// (Algorithms 1 and 2) is a regression model that estimates the black box
// model's score on an unlabeled serving batch from class-wise percentiles
// of its output distribution; a Validator turns this into the binary
// decision "did the score drop more than a threshold t", using a
// gradient-boosted classifier over the percentile features augmented with
// Kolmogorov–Smirnov statistics between test-time and serving-time
// outputs.
package core

import (
	"math"
	"math/rand"

	"blackboxval/internal/data"
	"blackboxval/internal/linalg"
	"blackboxval/internal/stats"
)

// PredictionStatistics computes the paper's prediction_statistics(Ŷ)
// featurizer: for each output dimension (class column) of the probability
// matrix, the percentiles at 0, step, 2*step, ..., 100 — a univariate
// non-parametric estimate of each output distribution. With the default
// step of 5 this yields 21 features per class.
func PredictionStatistics(proba *linalg.Matrix, step float64) []float64 {
	grid := stats.PercentileGrid(step)
	out := make([]float64, 0, len(grid)*proba.Cols)
	for c := 0; c < proba.Cols; c++ {
		col := proba.Col(c)
		out = append(out, stats.Percentiles(col, grid)...)
	}
	return out
}

// SubsampleBatch draws a bootstrap sample (with replacement) of the test
// data with a random size between 50% and 200% of the original and a
// mildly jittered class composition. Both augmentations make the learned
// predictor robust to properties of real serving batches that vary even
// without any corruption: extreme output percentiles (the 0th/100th
// features) systematically widen with batch size, and the whole output
// distribution shifts with the batch's class mix. A predictor trained on
// a single fixed batch misreads either fluctuation as data corruption.
func SubsampleBatch(test *data.Dataset, rng *rand.Rand) *data.Dataset {
	frac := 0.5 + rng.Float64()*1.5
	n := int(frac * float64(test.Len()))
	if n < 1 {
		n = 1
	}

	// Index rows by class and draw each slot from a class chosen under
	// jittered weights (±~20% relative), then uniformly within the class.
	byClass := make([][]int, len(test.Classes))
	for i, y := range test.Labels {
		byClass[y] = append(byClass[y], i)
	}
	weights := make([]float64, len(byClass))
	total := 0.0
	for c, rows := range byClass {
		w := float64(len(rows)) * math.Exp(rng.NormFloat64()*0.1)
		if len(rows) == 0 {
			w = 0
		}
		weights[c] = w
		total += w
	}
	idx := make([]int, n)
	for i := range idx {
		r := rng.Float64() * total
		c := 0
		for ; c < len(weights)-1; c++ {
			r -= weights[c]
			if r < 0 {
				break
			}
		}
		rows := byClass[c]
		idx[i] = rows[rng.Intn(len(rows))]
	}
	return test.SelectRows(idx)
}

// ksFeatures computes, per class column, the Kolmogorov–Smirnov D
// statistic and p-value between the model's outputs on the retained test
// set and on the serving batch — the hypothesis-test features the
// validator adds on top of the percentile features.
func ksFeatures(testProba, servingProba *linalg.Matrix) []float64 {
	out := make([]float64, 0, 2*testProba.Cols)
	for c := 0; c < testProba.Cols; c++ {
		res := stats.KolmogorovSmirnov(testProba.Col(c), servingProba.Col(c))
		out = append(out, res.Statistic, res.PValue)
	}
	return out
}
