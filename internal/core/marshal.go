package core

import (
	"encoding/json"
	"fmt"
	"reflect"

	"blackboxval/internal/data"
	"blackboxval/internal/linalg"
	"blackboxval/internal/models"
)

// JSON serialization for trained predictors and validators. The black box
// model itself is NOT serialized — it may live behind a network service —
// so a deserialized predictor must be re-attached to its model with
// AttachModel before Estimate (EstimateFromProba works immediately).
// Custom ScoreFuncs and error generators do not round-trip; only the
// built-in accuracy and AUC scores are supported.

// scoreTag maps the built-in score functions to stable wire names.
func scoreTag(f ScoreFunc) (string, error) {
	if f == nil {
		return "accuracy", nil
	}
	switch reflect.ValueOf(f).Pointer() {
	case reflect.ValueOf(AccuracyScore).Pointer():
		return "accuracy", nil
	case reflect.ValueOf(AUCScore).Pointer():
		return "auc", nil
	default:
		return "", fmt.Errorf("core: only the built-in accuracy and AUC score functions can be serialized")
	}
}

func scoreByTag(tag string) (ScoreFunc, error) {
	switch tag {
	case "", "accuracy":
		return AccuracyScore, nil
	case "auc":
		return AUCScore, nil
	default:
		return nil, fmt.Errorf("core: unknown score function %q", tag)
	}
}

// regressorTag maps the supported regressor types to wire names.
func regressorTag(r models.Regressor) (string, error) {
	switch r.(type) {
	case *models.RandomForestRegressor:
		return "random_forest", nil
	case *models.GBDTRegressor:
		return "gbdt", nil
	default:
		return "", fmt.Errorf("core: cannot serialize regressor type %T", r)
	}
}

func regressorByTag(tag string) (models.Regressor, error) {
	switch tag {
	case "random_forest":
		return &models.RandomForestRegressor{}, nil
	case "gbdt":
		return &models.GBDTRegressor{}, nil
	default:
		return nil, fmt.Errorf("core: unknown regressor type %q", tag)
	}
}

type matrixState struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

func matrixToState(m *linalg.Matrix) *matrixState {
	if m == nil {
		return nil
	}
	return &matrixState{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

func stateToMatrix(s *matrixState) (*linalg.Matrix, error) {
	if s == nil {
		return nil, nil
	}
	if len(s.Data) != s.Rows*s.Cols {
		return nil, fmt.Errorf("core: matrix state has %d values for %dx%d", len(s.Data), s.Rows, s.Cols)
	}
	return &linalg.Matrix{Rows: s.Rows, Cols: s.Cols, Data: s.Data}, nil
}

type predictorState struct {
	PercentileStep float64         `json:"percentile_step"`
	Score          string          `json:"score"`
	RegressorType  string          `json:"regressor_type"`
	Regressor      json.RawMessage `json:"regressor"`
	TestScore      float64         `json:"test_score"`
	TestOutputs    *matrixState    `json:"test_outputs"`
	TrainMAE       float64         `json:"train_mae"`
	NumExamples    int             `json:"num_examples"`
	CalibResiduals []float64       `json:"calib_residuals,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p *Predictor) MarshalJSON() ([]byte, error) {
	score, err := scoreTag(p.cfg.Score)
	if err != nil {
		return nil, err
	}
	regType, err := regressorTag(p.reg)
	if err != nil {
		return nil, err
	}
	regJSON, err := json.Marshal(p.reg)
	if err != nil {
		return nil, err
	}
	step := p.cfg.PercentileStep
	if step == 0 {
		step = 5
	}
	return json.Marshal(predictorState{
		PercentileStep: step,
		Score:          score,
		RegressorType:  regType,
		Regressor:      regJSON,
		TestScore:      p.testScore,
		TestOutputs:    matrixToState(p.testOutputs),
		TrainMAE:       p.trainMAE,
		NumExamples:    p.numExamples,
		CalibResiduals: p.calibResiduals,
	})
}

// UnmarshalJSON implements json.Unmarshaler. The model reference must be
// restored with AttachModel before calling Estimate.
func (p *Predictor) UnmarshalJSON(b []byte) error {
	var st predictorState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	score, err := scoreByTag(st.Score)
	if err != nil {
		return err
	}
	reg, err := regressorByTag(st.RegressorType)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(st.Regressor, reg); err != nil {
		return err
	}
	outputs, err := stateToMatrix(st.TestOutputs)
	if err != nil {
		return err
	}
	p.cfg = PredictorConfig{PercentileStep: st.PercentileStep, Score: score}
	p.reg = reg
	p.testScore = st.TestScore
	p.testOutputs = outputs
	p.trainMAE = st.TrainMAE
	p.numExamples = st.NumExamples
	p.calibResiduals = st.CalibResiduals
	p.model = nil
	return nil
}

// AttachModel re-binds a deserialized predictor to its black box model.
func (p *Predictor) AttachModel(model data.Model) { p.model = model }

type validatorState struct {
	Threshold         float64                `json:"threshold"`
	PercentileStep    float64                `json:"percentile_step"`
	DisableKSFeatures bool                   `json:"disable_ks_features"`
	Score             string                 `json:"score"`
	Classifier        *models.GBDTClassifier `json:"classifier"`
	Predictor         *Predictor             `json:"predictor"`
	TestScore         float64                `json:"test_score"`
	TestOutputs       *matrixState           `json:"test_outputs"`
	TrainPos          int                    `json:"train_pos"`
	TrainTotal        int                    `json:"train_total"`
}

// MarshalJSON implements json.Marshaler.
func (v *Validator) MarshalJSON() ([]byte, error) {
	score, err := scoreTag(v.cfg.Score)
	if err != nil {
		return nil, err
	}
	step := v.cfg.PercentileStep
	if step == 0 {
		step = 5
	}
	return json.Marshal(validatorState{
		Threshold:         v.cfg.Threshold,
		PercentileStep:    step,
		DisableKSFeatures: v.cfg.DisableKSFeatures,
		Score:             score,
		Classifier:        v.clf,
		Predictor:         v.predictor,
		TestScore:         v.testScore,
		TestOutputs:       matrixToState(v.testOutputs),
		TrainPos:          v.trainPos,
		TrainTotal:        v.trainTotal,
	})
}

// UnmarshalJSON implements json.Unmarshaler. The model reference must be
// restored with AttachModel before calling Violation.
func (v *Validator) UnmarshalJSON(b []byte) error {
	var st validatorState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	score, err := scoreByTag(st.Score)
	if err != nil {
		return err
	}
	outputs, err := stateToMatrix(st.TestOutputs)
	if err != nil {
		return err
	}
	v.cfg = ValidatorConfig{
		Threshold:         st.Threshold,
		PercentileStep:    st.PercentileStep,
		DisableKSFeatures: st.DisableKSFeatures,
		Score:             score,
	}
	v.clf = st.Classifier
	v.predictor = st.Predictor
	v.testScore = st.TestScore
	v.testOutputs = outputs
	v.trainPos = st.TrainPos
	v.trainTotal = st.TrainTotal
	v.model = nil
	return nil
}

// AttachModel re-binds a deserialized validator to its black box model.
func (v *Validator) AttachModel(model data.Model) { v.model = model }
