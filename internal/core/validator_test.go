package core

import (
	"math/rand"
	"testing"

	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/linalg"
	"blackboxval/internal/models"
)

func TestViolationProbabilityCalibratedDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ds := datagen.Income(3000, 21).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.GBDTClassifier{Seed: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	val, err := TrainValidator(model, test, ValidatorConfig{
		Generators: errorgen.KnownTabular(),
		Threshold:  0.05,
		Batches:    120,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cleanP := val.ViolationProbability(model.PredictProba(serving))
	heavy := errorgen.Scaling{}.Corrupt(serving, 0.95, rng)
	heavyProba := model.PredictProba(heavy)
	heavyScore := AccuracyScore(heavyProba, heavy.Labels)
	heavyP := val.ViolationProbability(heavyProba)
	if heavyScore < 0.9*val.TestScore() && heavyP <= cleanP {
		t.Fatalf("violation probability not ordered: clean %v vs catastrophic %v (score %v)", cleanP, heavyP, heavyScore)
	}
	if cleanP < 0 || cleanP > 1 || heavyP < 0 || heavyP > 1 {
		t.Fatal("probabilities out of range")
	}
}

func TestValidatorWithoutKSFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ds := datagen.Income(2500, 22).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 12, Seed: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	val, err := TrainValidator(model, test, ValidatorConfig{
		Generators:        errorgen.KnownTabular(),
		Threshold:         0.1,
		Batches:           100,
		DisableKSFeatures: true,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Feature vector without KS must be exactly [estimate, margin].
	proba := model.PredictProba(serving)
	if got := len(val.features(proba)); got != 2 {
		t.Fatalf("feature count without KS = %d, want 2", got)
	}
	withKS, err := TrainValidator(model, test, ValidatorConfig{
		Generators: errorgen.KnownTabular(),
		Threshold:  0.1,
		Batches:    100,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(withKS.features(proba)); got != 2+2*2 {
		t.Fatalf("feature count with KS = %d, want 6", got)
	}
}

func TestValidatorDegenerateRegimeFallback(t *testing.T) {
	// NoOp generators can never cause a violation: training labels would
	// be all-zero after borderline trimming, triggering the fallback
	// path. The validator must still train and never alarm on clean data.
	rng := rand.New(rand.NewSource(23))
	ds := datagen.Income(1500, 23).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 10, Seed: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	val, err := TrainValidator(model, test, ValidatorConfig{
		Generators: []errorgen.Generator{errorgen.NoOp{}},
		Threshold:  0.1,
		Batches:    60,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if val.Violation(serving) {
		t.Fatal("validator trained on no-op errors alarmed on clean data")
	}
}

func TestValidatorTrainBalanceNotDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ds := datagen.Heart(2500, 24).Balance(rng)
	source, _ := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 10, Seed: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	val, err := TrainValidator(model, test, ValidatorConfig{
		Generators: errorgen.KnownTabular(),
		Threshold:  0.05,
		Batches:    100,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos, total := val.TrainBalance()
	if total < 50 {
		t.Fatalf("too few usable training batches: %d", total)
	}
	if pos == 0 || pos == total {
		t.Fatalf("degenerate balance %d/%d for error types that clearly break an lr model", pos, total)
	}
}

func TestValidatorFeatureMarginSign(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	ds := datagen.Income(2000, 25).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.GBDTClassifier{Trees: 20, Seed: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	val, err := TrainValidator(model, test, ValidatorConfig{
		Generators: errorgen.KnownTabular(),
		Threshold:  0.05,
		Batches:    80,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// On clean serving data the margin feature (estimate - (1-t)*testScore)
	// should be positive; after catastrophic scaling it should drop.
	clean := val.features(model.PredictProba(serving))
	if clean[1] <= 0 {
		t.Fatalf("clean margin = %v, want > 0", clean[1])
	}
	heavy := errorgen.Scaling{}.Corrupt(serving, 0.95, rng)
	hf := val.features(model.PredictProba(heavy))
	if hf[1] >= clean[1] {
		t.Fatalf("margin did not shrink under catastrophic corruption: %v vs %v", hf[1], clean[1])
	}
}

func TestValidatorFeatureVectorDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	ds := datagen.Income(1200, 26).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := models.TrainPipeline(train, &models.SGDClassifier{Epochs: 8, Seed: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	val, err := TrainValidator(model, test, ValidatorConfig{
		Generators: errorgen.KnownTabular(),
		Batches:    60,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	proba := model.PredictProba(serving)
	a := val.features(proba)
	b := val.features(proba)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("features not deterministic for identical outputs")
		}
	}
	var m *linalg.Matrix = proba.Clone()
	c := val.features(m)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("features differ for cloned outputs")
		}
	}
}
