package core

// Property and fuzz tests for the streaming featurizer: a
// StreamAccumulator (P² digests per class) fed any probability stream
// must produce percentile features close to the exact batch featurizer
// PredictionStatistics over the same outputs, with exact agreement at
// the 0th/100th percentiles (the digest tracks min/max exactly).

import (
	"math"
	"testing"

	"blackboxval/internal/linalg"
)

// streamDistributions are the probability-stream shapes the property test
// sweeps: P² accuracy depends on the distribution, so one uniform check
// (as in TestStreamAccumulatorMatchesBatchFeatures) is not enough.
var streamDistributions = []struct {
	name string
	draw func(rng interface{ Float64() float64 }) float64
}{
	{"uniform", func(rng interface{ Float64() float64 }) float64 { return rng.Float64() }},
	{"skewed_low", func(rng interface{ Float64() float64 }) float64 { v := rng.Float64(); return v * v * v }},
	{"skewed_high", func(rng interface{ Float64() float64 }) float64 { v := rng.Float64(); return 1 - v*v }},
	{"confident", func(rng interface{ Float64() float64 }) float64 {
		// Peaks near 0 and 1, like a well-trained classifier's outputs.
		v := rng.Float64()
		if rng.Float64() < 0.5 {
			return 0.02 * v
		}
		return 1 - 0.02*v
	}},
	{"bimodal", func(rng interface{ Float64() float64 }) float64 {
		if rng.Float64() < 0.3 {
			return 0.1 + 0.05*rng.Float64()
		}
		return 0.7 + 0.2*rng.Float64()
	}},
}

// massBetween returns the fraction of observations lying strictly
// between a and b. Comparing raw quantile values is the wrong metric on
// distributions with CDF jumps: at a jump, values far apart in absolute
// terms can be separated by almost no probability mass, and any of them
// is an equally legitimate quantile estimate. Mass separation is the
// scale-free error measure that is strict exactly where it should be —
// a wrong estimate in a dense region is separated from the truth by a
// lot of mass.
func massBetween(xs []float64, a, b float64) float64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	n := 0
	for _, x := range xs {
		if lo < x && x < hi {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// checkStreamVsExact feeds the two-class stream into an accumulator and
// checks every percentile feature against the exact featurizer: the
// estimate must either be within valueTol of the exact order statistic,
// or be separated from it by at most rankTol probability mass (the
// correct criterion at CDF jumps, where P² legitimately returns a
// mid-gap value).
func checkStreamVsExact(t *testing.T, ps []float64, step, valueTol, rankTol float64) {
	t.Helper()
	n := len(ps)
	proba := linalg.NewMatrix(n, 2)
	acc := NewStreamAccumulator(2, step)
	cols := [2][]float64{make([]float64, n), make([]float64, n)}
	for i, p := range ps {
		proba.Set(i, 0, p)
		proba.Set(i, 1, 1-p)
		cols[0][i], cols[1][i] = p, 1-p
		acc.Add([]float64{p, 1 - p})
	}
	exact := PredictionStatistics(proba, step)
	approx := acc.Features()
	if len(approx) != len(exact) {
		t.Fatalf("feature count %d vs exact %d", len(approx), len(exact))
	}
	perClass := len(exact) / 2
	for i := range exact {
		// Percentile blocks stay monotone per class.
		if i%perClass > 0 && approx[i] < approx[i-1]-1e-12 {
			t.Fatalf("stream features not monotone at %d: %v < %v", i, approx[i], approx[i-1])
		}
		if valueTol < 0 {
			continue // invariants only (tiny fuzz streams)
		}
		if math.Abs(approx[i]-exact[i]) <= valueTol {
			continue
		}
		if gap := massBetween(cols[i/perClass], approx[i], exact[i]); gap > rankTol {
			t.Fatalf("feature %d (p=%v): stream %v vs exact %v separated by %v probability mass (tol %v, n=%d)",
				i, float64(i%perClass)*step, approx[i], exact[i], gap, rankTol, n)
		}
	}
	// Extremes are tracked exactly, not approximated.
	if approx[0] != exact[0] || approx[perClass-1] != exact[perClass-1] {
		t.Fatalf("extreme percentiles diverge: stream [%v,%v] vs exact [%v,%v]",
			approx[0], approx[perClass-1], exact[0], exact[perClass-1])
	}
	if acc.Count() != n {
		t.Fatalf("count %d, want %d", acc.Count(), n)
	}
}

func TestStreamAccumulatorPropertyRandomStreams(t *testing.T) {
	for _, dist := range streamDistributions {
		t.Run(dist.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				for _, n := range []int{500, 2000, 8000} {
					rng := jobRNG(seed, 300, n)
					ps := make([]float64, n)
					for i := range ps {
						ps[i] = dist.draw(rng)
					}
					// The value bound tightens with stream length; the mass
					// bound does not, because on near-atomic distributions a
					// P² marker can park inside a CDF gap with a persistent
					// ~0.1 rank bias that more data never repairs (measured
					// on the confident/bimodal streams here).
					valueTol, rankTol := 0.05, 0.12
					if n >= 2000 {
						valueTol = 0.03
					}
					checkStreamVsExact(t, ps, 5, valueTol, rankTol)
				}
			}
		})
	}
}

func TestStreamAccumulatorPropertyCoarseGrid(t *testing.T) {
	rng := jobRNG(9, 301, 0)
	ps := make([]float64, 4000)
	for i := range ps {
		ps[i] = rng.Float64()
	}
	checkStreamVsExact(t, ps, 25, 0.03, 0.04)
}

// FuzzStreamAccumulator lets the fuzzer hunt for probability streams
// where the online digest drifts from the exact featurizer or violates
// its structural invariants (monotonicity, exact extremes).
func FuzzStreamAccumulator(f *testing.F) {
	f.Add([]byte{0, 255, 128, 64, 32, 200, 17, 90})
	f.Add([]byte{1, 1, 1, 1, 1, 254, 254, 254, 254, 254, 127})
	seed := make([]byte, 600)
	for i := range seed {
		seed[i] = byte((i * 37) % 256)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 8 {
			t.Skip("stream too short for percentile features")
		}
		ps := make([]float64, len(raw))
		for i, b := range raw {
			ps[i] = float64(b) / 255
		}
		// Byte streams are adversarial (heavy atoms, tiny support): check
		// only the structural invariants on short streams, and generous
		// closeness/rank bounds once the digests have warmed up.
		valueTol, rankTol := -1.0, -1.0
		if len(ps) >= 128 {
			valueTol, rankTol = 0.1, 0.1
		}
		checkStreamVsExact(t, ps, 5, valueTol, rankTol)
	})
}
