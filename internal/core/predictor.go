package core

import (
	"context"
	"fmt"
	"math/rand"

	"blackboxval/internal/data"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/linalg"
	"blackboxval/internal/models"
	"blackboxval/internal/obs"
	"blackboxval/internal/stats"
)

// ScoreFunc is the known scoring function L of the black box model, e.g.
// accuracy or AUC.
type ScoreFunc func(proba *linalg.Matrix, y []int) float64

// AccuracyScore scores by classification accuracy.
func AccuracyScore(proba *linalg.Matrix, y []int) float64 {
	return models.Accuracy(proba, y)
}

// AUCScore scores binary problems by the area under the ROC curve, using
// the probability of class 1.
func AUCScore(proba *linalg.Matrix, y []int) float64 {
	if proba.Cols != 2 {
		panic("core: AUC score requires a binary classifier")
	}
	return stats.AUC(proba.Col(1), y)
}

// PredictorConfig controls the training of a performance predictor.
type PredictorConfig struct {
	// Generators are the user-specified error types expected in serving
	// data. Required.
	Generators []errorgen.Generator
	// Repetitions is the number of corrupted datasets generated per error
	// type (default 100).
	Repetitions int
	// CleanRepetitions adds uncorrupted batches so the predictor learns
	// the no-error regime (default max(8, Repetitions/2)).
	CleanRepetitions int
	// PercentileStep is the percentile grid step of the output featurizer
	// (default 5, i.e. the paper's 0th, 5th, ..., 100th percentiles).
	PercentileStep float64
	// ForestSizes is the grid searched over the number of trees of the
	// random forest regressor (default {50, 100}).
	ForestSizes []int
	// Folds is the cross-validation fold count for the grid search
	// (default 5).
	Folds int
	// Score is the scoring function L (default AccuracyScore).
	Score ScoreFunc
	// Regressor overrides the regression learner (default: random forest
	// with ForestSizes grid search). Used by the ablation benchmarks.
	Regressor models.Regressor
	// Workers bounds the goroutine pool building the corruption
	// meta-dataset and running the grid search (default runtime.NumCPU();
	// 1 runs strictly serially). Every job derives its own RNG from Seed
	// and its job index, so the trained predictor is bit-identical for
	// every Workers value.
	Workers int
	// Seed drives all randomness.
	Seed int64
}

func (c *PredictorConfig) defaults() {
	if c.Repetitions == 0 {
		c.Repetitions = 100
	}
	if c.CleanRepetitions == 0 {
		c.CleanRepetitions = c.Repetitions / 2
		if c.CleanRepetitions < 8 {
			c.CleanRepetitions = 8
		}
	}
	if c.PercentileStep == 0 {
		c.PercentileStep = 5
	}
	if len(c.ForestSizes) == 0 {
		c.ForestSizes = []int{50, 100}
	}
	if c.Folds == 0 {
		c.Folds = 5
	}
	if c.Score == nil {
		c.Score = AccuracyScore
	}
}

// Predictor estimates the score of a specific black box model on unseen,
// unlabeled serving batches (Algorithm 2). Train one with TrainPredictor
// (Algorithm 1) and deploy it alongside the model.
type Predictor struct {
	model data.Model
	cfg   PredictorConfig
	reg   models.Regressor

	testScore   float64
	testOutputs *linalg.Matrix // Ŷtest, retained for the validator's KS features
	trainMAE    float64        // cross-validated MAE of the chosen regressor
	numExamples int
	// calibResiduals are absolute out-of-sample residuals from a held-out
	// calibration split of the synthetic corruption meta-dataset, powering
	// split-conformal interval estimates.
	calibResiduals []float64
}

// TrainPredictor implements Algorithm 1: it corrupts the held-out test
// set with every user-specified error generator at random magnitudes,
// records (output percentiles, true score) pairs, and fits a regression
// model mapping the former to the latter.
func TrainPredictor(model data.Model, test *data.Dataset, cfg PredictorConfig) (*Predictor, error) {
	return TrainPredictorCtx(context.Background(), model, test, cfg)
}

// TrainPredictorCtx is TrainPredictor with per-stage telemetry: it
// records a "train_predictor" span (children: meta_dataset,
// predictor_fit, calibrate) on the tracer carried by ctx — or the
// process default when ctx carries none — and feeds the shared
// stage-duration histograms. Training itself is unaffected:
// instrumentation never touches an RNG stream.
func TrainPredictorCtx(ctx context.Context, model data.Model, test *data.Dataset, cfg PredictorConfig) (*Predictor, error) {
	cfg.defaults()
	if model == nil {
		return nil, fmt.Errorf("core: model is required")
	}
	if len(cfg.Generators) == 0 {
		return nil, fmt.Errorf("core: at least one error generator is required")
	}
	if test.Len() == 0 {
		return nil, fmt.Errorf("core: empty test set")
	}

	ctx, root := obs.StartSpan(ctx, "train_predictor")
	defer root.End()
	root.SetMetric("rows", float64(test.Len()))
	root.SetMetric("generators", float64(len(cfg.Generators)))
	root.SetMetric("workers", float64(resolveWorkers(cfg.Workers)))

	p := &Predictor{model: model, cfg: cfg}
	p.testOutputs = model.PredictProba(test)
	p.testScore = cfg.Score(p.testOutputs, test.Labels)

	// Lines 3-12 of Algorithm 1: build the meta-dataset M across
	// cfg.Workers goroutines. Every training batch is a random subsample
	// of the test set so the featurized output distributions vary the way
	// real serving batches do — training on the identical test rows each
	// time would make the clean regime look artificially degenerate.
	_, metaSp, metaDone := stageSpan(ctx, "meta_dataset")
	features, scores, rows := buildMetaDataset(model, test, cfg)
	p.numExamples = len(features)
	metaSp.SetMetric("examples", float64(p.numExamples))
	metaSp.SetMetric("rows_scored", float64(rows))
	metaDone()

	X := linalg.FromRows(features)
	// Line 13: train the regression model, grid-searching the forest
	// size with k-fold cross-validation on MAE.
	_, fitSp, fitDone := stageSpan(ctx, "predictor_fit")
	if cfg.Regressor != nil {
		p.reg = cfg.Regressor
		if err := p.reg.Fit(X, scores); err != nil {
			fitDone()
			return nil, fmt.Errorf("core: fitting custom regressor: %w", err)
		}
		p.trainMAE = regressorMAE(p.reg, X, scores)
	} else {
		best, bestMAE, err := selectForest(X, scores, cfg, jobRNG(cfg.Seed+10, streamPredictorGrid, 0))
		if err != nil {
			fitDone()
			return nil, err
		}
		p.reg = best
		p.trainMAE = bestMAE
	}
	fitSp.SetMetric("mae", p.trainMAE)
	fitDone()

	_, _, calibDone := stageSpan(ctx, "calibrate")
	err := p.calibrate(X, scores, jobRNG(cfg.Seed+10, streamPredictorCalib, 0))
	calibDone()
	if err != nil {
		return nil, err
	}
	return p, nil
}

// calibrate computes absolute out-of-sample residuals on a 20% held-out
// split of the meta-dataset (refitting a regressor of the same shape on
// the remaining 80%), enabling split-conformal intervals.
func (p *Predictor) calibrate(X *linalg.Matrix, scores []float64, rng *rand.Rand) error {
	n := len(scores)
	if n < 10 {
		return nil // not enough data for a meaningful split
	}
	perm := rng.Perm(n)
	cut := n / 5
	calibIdx, trainIdx := perm[:cut], perm[cut:]
	trainY := make([]float64, len(trainIdx))
	for i, idx := range trainIdx {
		trainY[i] = scores[idx]
	}
	var reg models.Regressor
	switch r := p.reg.(type) {
	case *models.RandomForestRegressor:
		reg = &models.RandomForestRegressor{Trees: r.Trees, MaxDepth: r.MaxDepth, Seed: r.Seed + 1}
	case *models.GBDTRegressor:
		reg = &models.GBDTRegressor{Trees: r.Trees, MaxDepth: r.MaxDepth, Seed: r.Seed + 1}
	default:
		return nil // unknown regressor type: intervals unavailable
	}
	if err := reg.Fit(X.SelectRows(trainIdx), trainY); err != nil {
		return fmt.Errorf("core: fitting calibration regressor: %w", err)
	}
	preds := reg.Predict(X.SelectRows(calibIdx))
	p.calibResiduals = make([]float64, len(calibIdx))
	for i, idx := range calibIdx {
		d := preds[i] - scores[idx]
		if d < 0 {
			d = -d
		}
		p.calibResiduals[i] = d
	}
	return nil
}

// EstimateInterval returns the score estimate together with a
// split-conformal interval [lo, hi] at the given miscoverage level alpha
// (e.g. 0.1 for a nominal 90% interval): the half-width is the
// (1-alpha)-quantile of the absolute calibration residuals. The interval
// is valid for serving corruption resembling the specified error types;
// wildly out-of-distribution batches can exceed it (check
// EstimateWithUncertainty for an ensemble-disagreement signal). Returns
// the degenerate interval [est, est] when calibration data is
// unavailable.
func (p *Predictor) EstimateInterval(proba *linalg.Matrix, alpha float64) (est, lo, hi float64) {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("core: miscoverage alpha %v out of (0,1)", alpha))
	}
	est = p.EstimateFromProba(proba)
	if len(p.calibResiduals) == 0 {
		return est, est, est
	}
	halfWidth := stats.Percentile(p.calibResiduals, (1-alpha)*100)
	lo, hi = est-halfWidth, est+halfWidth
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return est, lo, hi
}

// selectForest grid-searches the forest size by cross-validated MAE and
// refits the winner on all data. Every (size, fold) cell refits an
// independent regressor, so the cells run on cfg.Workers goroutines; the
// per-size MAEs are then aggregated in fold order, keeping the float
// summation — and the chosen size — deterministic.
func selectForest(X *linalg.Matrix, y []float64, cfg PredictorConfig, rng *rand.Rand) (models.Regressor, float64, error) {
	folds := cfg.Folds
	if folds > len(y) {
		folds = len(y)
	}
	bestSize := cfg.ForestSizes[0]
	bestMAE := -1.0
	if len(cfg.ForestSizes) > 1 && folds >= 2 {
		perm := rng.Perm(len(y))
		cells := len(cfg.ForestSizes) * folds
		maes := make([]float64, cells)
		errs := make([]error, cells)
		runJobs(cfg.Workers, cells, func(j int) {
			size := cfg.ForestSizes[j/folds]
			maes[j], errs[j] = foldMAE(X, y, perm, folds, j%folds, func() models.Regressor {
				return &models.RandomForestRegressor{Trees: size, Seed: cfg.Seed}
			})
		})
		for _, err := range errs {
			if err != nil {
				return nil, 0, err
			}
		}
		for si, size := range cfg.ForestSizes {
			total := 0.0
			for f := 0; f < folds; f++ {
				total += maes[si*folds+f]
			}
			if mae := total / float64(folds); bestMAE < 0 || mae < bestMAE {
				bestMAE = mae
				bestSize = size
			}
		}
	}
	forest := &models.RandomForestRegressor{Trees: bestSize, Seed: cfg.Seed}
	if err := forest.Fit(X, y); err != nil {
		return nil, 0, fmt.Errorf("core: fitting performance predictor: %w", err)
	}
	if bestMAE < 0 {
		bestMAE = regressorMAE(forest, X, y)
	}
	return forest, bestMAE, nil
}

// foldMAE fits a fresh regressor on every fold except f and returns its
// MAE on fold f.
func foldMAE(X *linalg.Matrix, y []float64, perm []int, folds, f int, newReg func() models.Regressor) (float64, error) {
	var trainIdx, valIdx []int
	for i, idx := range perm {
		if i%folds == f {
			valIdx = append(valIdx, idx)
		} else {
			trainIdx = append(trainIdx, idx)
		}
	}
	trainY := make([]float64, len(trainIdx))
	for i, idx := range trainIdx {
		trainY[i] = y[idx]
	}
	valY := make([]float64, len(valIdx))
	for i, idx := range valIdx {
		valY[i] = y[idx]
	}
	reg := newReg()
	if err := reg.Fit(X.SelectRows(trainIdx), trainY); err != nil {
		return 0, err
	}
	return stats.MAE(reg.Predict(X.SelectRows(valIdx)), valY), nil
}

func regressorMAE(reg models.Regressor, X *linalg.Matrix, y []float64) float64 {
	return stats.MAE(reg.Predict(X), y)
}

// Estimate implements Algorithm 2: it runs the black box model on the
// unlabeled serving batch, featurizes the output distribution and returns
// the predicted score.
func (p *Predictor) Estimate(serving *data.Dataset) float64 {
	return p.EstimateFromProba(p.model.PredictProba(serving))
}

// EstimateFromProba estimates the score directly from a matrix of model
// outputs, for callers that already hold the predictions.
func (p *Predictor) EstimateFromProba(proba *linalg.Matrix) float64 {
	return p.EstimateFromFeatures(PredictionStatistics(proba, p.cfg.PercentileStep))
}

// EstimateWithUncertainty returns the score estimate together with an
// ensemble-disagreement measure: the standard deviation of the individual
// trees of the random forest regressor. Serving batches unlike anything
// seen during predictor training (e.g. corrupted by an error type far
// outside the specified set) spread the trees and inflate this value, so
// operators can treat high-uncertainty estimates with extra suspicion.
// For non-forest regressors the uncertainty is reported as 0.
func (p *Predictor) EstimateWithUncertainty(proba *linalg.Matrix) (estimate, uncertainty float64) {
	feats := PredictionStatistics(proba, p.cfg.PercentileStep)
	X := matrixFromRow(feats)
	forest, ok := p.reg.(*models.RandomForestRegressor)
	if !ok {
		return p.EstimateFromFeatures(feats), 0
	}
	mean, std := forest.PredictWithStd(X)
	v := mean[0]
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v, std[0]
}

// matrixFromRow wraps one feature vector as a 1-row matrix.
func matrixFromRow(feats []float64) *linalg.Matrix {
	return linalg.FromRows([][]float64{feats})
}

// TestScore returns the black box model's score on the clean held-out
// test set, the reference point for validation thresholds.
func (p *Predictor) TestScore() float64 { return p.testScore }

// TestOutputs returns the retained model outputs Ŷtest on the clean test
// set (needed by the validator's hypothesis-test features).
func (p *Predictor) TestOutputs() *linalg.Matrix { return p.testOutputs }

// TrainMAE reports the cross-validated mean absolute error of the
// regressor on the synthetic corruption meta-dataset.
func (p *Predictor) TrainMAE() float64 { return p.trainMAE }

// NumExamples reports how many corrupted datasets were used for training.
func (p *Predictor) NumExamples() int { return p.numExamples }

// Model returns the wrapped black box model.
func (p *Predictor) Model() data.Model { return p.model }
