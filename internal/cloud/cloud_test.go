package cloud

import (
	"bytes"
	"context"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/models"
)

func trainModel(t *testing.T, ds *data.Dataset) data.Model {
	t.Helper()
	m, err := models.TrainPipeline(ds, &models.SGDClassifier{Epochs: 10, Seed: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRoundTripTabular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := datagen.Income(1200, 1)
	train, serving := ds.Split(0.7, rng)
	model := trainModel(t, train)

	srv := httptest.NewServer(NewServer(model).Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	remote, err := client.Predict(serving)
	if err != nil {
		t.Fatal(err)
	}
	local := model.PredictProba(serving)
	if remote.Rows != local.Rows || remote.Cols != local.Cols {
		t.Fatalf("shape mismatch: remote %dx%d local %dx%d", remote.Rows, remote.Cols, local.Rows, local.Cols)
	}
	for i := range local.Data {
		if math.Abs(remote.Data[i]-local.Data[i]) > 1e-9 {
			t.Fatalf("probability mismatch at %d: %v vs %v", i, remote.Data[i], local.Data[i])
		}
	}
	if client.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d", client.NumClasses())
	}
}

func TestRoundTripMissingValues(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := datagen.Income(600, 2)
	train, serving := ds.Split(0.7, rng)
	// Punch NaN and empty-string holes into the serving data.
	serving.Frame.Column("age").Num[0] = math.NaN()
	serving.Frame.Column("occupation").Str[0] = ""
	model := trainModel(t, train)

	srv := httptest.NewServer(NewServer(model).Handler())
	defer srv.Close()
	remote, err := NewClient(srv.URL).Predict(serving)
	if err != nil {
		t.Fatal(err)
	}
	local := model.PredictProba(serving)
	for i := range local.Data {
		if math.Abs(remote.Data[i]-local.Data[i]) > 1e-9 {
			t.Fatal("missing values not preserved over the wire")
		}
	}
}

func TestRoundTripImages(t *testing.T) {
	ds := datagen.Digits(80, 1)
	model, err := models.TrainPipeline(ds, &models.CNNClassifier{Epochs: 1, Conv1: 4, Conv2: 8, Dense: 16, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(model).Handler())
	defer srv.Close()
	remote, err := NewClient(srv.URL).Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	local := model.PredictProba(ds)
	for i := range local.Data {
		if math.Abs(remote.Data[i]-local.Data[i]) > 1e-9 {
			t.Fatal("image predictions differ over the wire")
		}
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	ds := datagen.Income(300, 3)
	model := trainModel(t, ds)
	srv := httptest.NewServer(NewServer(model).Handler())
	defer srv.Close()

	// GET not allowed
	resp, err := http.Get(srv.URL + "/predict_proba")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}

	// invalid JSON
	resp, err = http.Post(srv.URL+"/predict_proba", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", resp.StatusCode)
	}

	// empty request
	resp, err = http.Post(srv.URL+"/predict_proba", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request status = %d", resp.StatusCode)
	}
}

func TestHealthEndpoint(t *testing.T) {
	ds := datagen.Income(300, 4)
	srv := httptest.NewServer(NewServer(trainModel(t, ds)).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestClientErrorOnUnreachableService(t *testing.T) {
	client := NewClient("http://127.0.0.1:1") // nothing listens here
	ds := datagen.Income(10, 5)
	if _, err := client.Predict(ds); err == nil {
		t.Fatal("expected transport error")
	}
}

func TestPredictCtxHonorsCancellation(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewClient(srv.URL).PredictCtx(ctx, datagen.Income(10, 6)); err == nil {
		t.Fatal("cancelled context should surface as an error")
	}
}

func TestPredictCtxSurfacesServerErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "model exploded", http.StatusInternalServerError)
	}))
	defer srv.Close()
	_, err := NewClient(srv.URL).PredictCtx(context.Background(), datagen.Income(10, 7))
	if err == nil || !strings.Contains(err.Error(), "model exploded") {
		t.Fatalf("want wrapped server error, got %v", err)
	}
}

func TestPredictProbaLogsAndPanicsOnTransportError(t *testing.T) {
	var buf bytes.Buffer
	client := NewClient("http://127.0.0.1:1")
	client.Logger = log.New(&buf, "", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("PredictProba should panic on transport failure")
		}
		if !strings.Contains(buf.String(), "prediction request") {
			t.Fatalf("transport failure not logged: %q", buf.String())
		}
	}()
	client.PredictProba(datagen.Income(10, 8))
}

func TestParseProbaResponse(t *testing.T) {
	proba, n, err := ParseProbaResponse([]byte(`{"probabilities":[[0.25,0.75],[0.5,0.5]],"num_classes":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || proba.Rows != 2 || proba.Cols != 2 || proba.Row(0)[1] != 0.75 {
		t.Fatalf("parsed %dx%d classes=%d: %v", proba.Rows, proba.Cols, n, proba.Data)
	}
	if _, _, err := ParseProbaResponse([]byte(`{nope`)); err == nil {
		t.Fatal("invalid JSON should error")
	}
	if _, _, err := ParseProbaResponse([]byte(`{"probabilities":[[0.5]],"num_classes":2}`)); err == nil {
		t.Fatal("ragged row should error")
	}
	if _, _, err := ParseProbaResponse([]byte(`{"probabilities":[],"num_classes":0}`)); err == nil {
		t.Fatal("zero classes should error")
	}
}

func TestDecodeRequestValidation(t *testing.T) {
	if _, err := decodeRequest(predictRequest{Images: [][]float64{{1, 2}}}, 2); err == nil {
		t.Fatal("missing image dims should error")
	}
	if _, err := decodeRequest(predictRequest{Columns: []wireColumn{{Name: "x", Kind: "bogus"}}}, 2); err == nil {
		t.Fatal("unknown kind should error")
	}
}
