package cloud

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"blackboxval/internal/automl"
	"blackboxval/internal/data"
)

// AutoMLServer simulates the full contract of a cloud AutoML service
// (the paper's Google AutoML Tables setting, Section 6.3.2): clients
// upload a labeled training dataset, the service runs an AutoML search
// server-side and returns a model id, and predictions are retrieved per
// model id. The client never learns the chosen model family, its
// hyperparameters or its feature map.
type AutoMLServer struct {
	// Config controls the server-side AutoML search.
	Config automl.Config

	mu     sync.Mutex
	nextID int
	models map[string]data.Model
}

// NewAutoMLServer returns a service with the given search configuration.
func NewAutoMLServer(cfg automl.Config) *AutoMLServer {
	return &AutoMLServer{Config: cfg, models: map[string]data.Model{}}
}

// trainRequest is the body of POST /train: a full labeled dataset.
type trainRequest struct {
	Dataset json.RawMessage `json:"dataset"`
}

// trainResponse returns the handle of the trained model.
type trainResponse struct {
	ModelID   string  `json:"model_id"`
	TestScore float64 `json:"test_score"` // service-side holdout accuracy
}

// Handler returns the HTTP handler implementing the AutoML API:
//
//	POST /train                      body: {"dataset": <dataset JSON>} -> {"model_id", "test_score"}
//	POST /models/<id>/predict_proba  body: predictRequest -> predictResponse
//	GET  /healthz                    -> 200 ok
func (s *AutoMLServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/train", s.handleTrain)
	mux.HandleFunc("/models/", s.handleModel)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *AutoMLServer) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req trainRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "invalid JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	ds := &data.Dataset{}
	if err := json.Unmarshal(req.Dataset, ds); err != nil {
		http.Error(w, "invalid dataset: "+err.Error(), http.StatusBadRequest)
		return
	}
	if ds.Len() < 20 {
		http.Error(w, "dataset too small to train on", http.StatusBadRequest)
		return
	}

	// Server-side holdout for the reported quality, then AutoML search.
	s.mu.Lock()
	s.nextID++
	id := "m" + strconv.Itoa(s.nextID)
	seedOffset := int64(s.nextID)
	s.mu.Unlock()

	cfg := s.Config
	cfg.Seed += seedOffset
	model, err := automl.AutoSklearn(ds, cfg)
	if err != nil {
		http.Error(w, "training failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	score := holdoutScore(model, ds)

	s.mu.Lock()
	s.models[id] = model
	s.mu.Unlock()

	writeJSONResponse(w, trainResponse{ModelID: id, TestScore: score})
}

// holdoutScore reports training-data accuracy on a tail slice as a rough
// service-side quality indicator (the real service reports holdout
// metrics; this one trains on everything and scores the last 20%).
func holdoutScore(model data.Model, ds *data.Dataset) float64 {
	n := ds.Len()
	cut := n - n/5
	idx := make([]int, 0, n-cut)
	for i := cut; i < n; i++ {
		idx = append(idx, i)
	}
	tail := ds.SelectRows(idx)
	proba := model.PredictProba(tail)
	hits := 0
	for i, y := range tail.Labels {
		best, bestV := 0, proba.At(i, 0)
		for c := 1; c < proba.Cols; c++ {
			if proba.At(i, c) > bestV {
				best, bestV = c, proba.At(i, c)
			}
		}
		if best == y {
			hits++
		}
	}
	if tail.Len() == 0 {
		return 0
	}
	return float64(hits) / float64(tail.Len())
}

func (s *AutoMLServer) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var id string
	var action string
	if n, err := fmt.Sscanf(r.URL.Path, "/models/%s", &id); n != 1 || err != nil {
		http.NotFound(w, r)
		return
	}
	for i := range id {
		if id[i] == '/' {
			id, action = id[:i], id[i+1:]
			break
		}
	}
	if action != "predict_proba" {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	model, ok := s.models[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown model "+id, http.StatusNotFound)
		return
	}
	(&Server{model: model}).handlePredict(w, r)
}

func writeJSONResponse(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// AutoMLClient drives a remote AutoML service: upload data, train, and
// obtain a Client bound to the resulting model.
type AutoMLClient struct {
	// BaseURL of the AutoML service.
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
}

// NewAutoMLClient returns a client for the AutoML service at baseURL.
func NewAutoMLClient(baseURL string) *AutoMLClient { return &AutoMLClient{BaseURL: baseURL} }

func (c *AutoMLClient) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Train uploads the labeled dataset, waits for the server-side AutoML
// search and returns a prediction client for the new model plus the
// service-reported quality.
func (c *AutoMLClient) Train(ds *data.Dataset) (*Client, float64, error) {
	dsJSON, err := json.Marshal(ds)
	if err != nil {
		return nil, 0, fmt.Errorf("cloud: encoding dataset: %w", err)
	}
	payload, err := json.Marshal(trainRequest{Dataset: dsJSON})
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.httpClient().Post(c.BaseURL+"/train", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, 0, fmt.Errorf("cloud: calling train: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, fmt.Errorf("cloud: train returned %s: %s", resp.Status, msg)
	}
	var tr trainResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return nil, 0, fmt.Errorf("cloud: decoding train response: %w", err)
	}
	client := NewClient(c.BaseURL + "/models/" + tr.ModelID)
	client.HTTPClient = c.HTTPClient
	return client, tr.TestScore, nil
}
