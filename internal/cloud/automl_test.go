package cloud

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"blackboxval/internal/automl"
	"blackboxval/internal/core"
	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
)

func TestAutoMLServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("remote AutoML training is slow")
	}
	srv := httptest.NewServer(NewAutoMLServer(automl.Config{Seed: 1, Folds: 2, HashDims: 32}).Handler())
	defer srv.Close()

	rng := rand.New(rand.NewSource(1))
	ds := datagen.Income(2500, 1).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	// Upload the training data, let the service run its AutoML search.
	client, reported, err := NewAutoMLClient(srv.URL).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if reported < 0.6 {
		t.Fatalf("service-reported quality = %v", reported)
	}

	// The returned prediction client is a data.Model: the whole
	// validation stack works against it unchanged.
	pred, err := core.TrainPredictor(client, test, core.PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 10,
		ForestSizes: []int{20},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.TestScore() < 0.6 {
		t.Fatalf("remote model test accuracy = %v", pred.TestScore())
	}
	est := pred.Estimate(serving)
	if est < 0.5 || est > 1 {
		t.Fatalf("estimate = %v", est)
	}

	// A second model gets its own id and namespace.
	client2, _, err := NewAutoMLClient(srv.URL).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if client.BaseURL == client2.BaseURL {
		t.Fatal("two trained models share a URL")
	}
}

func TestAutoMLServiceRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewAutoMLServer(automl.Config{Seed: 1}).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/train")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /train = %d", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/train", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", resp.StatusCode)
	}

	// tiny dataset rejected
	resp, err = http.Post(srv.URL+"/train", "application/json",
		strings.NewReader(`{"dataset":{"columns":[{"name":"x","kind":0,"num":[1]}],"labels":[0],"classes":["a"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tiny dataset = %d", resp.StatusCode)
	}

	// unknown model id
	resp, err = http.Post(srv.URL+"/models/m999/predict_proba", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model = %d", resp.StatusCode)
	}

	// bad path
	resp, err = http.Post(srv.URL+"/models/m1/reticulate", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad action = %d", resp.StatusCode)
	}
}
