// Package cloud reproduces the paper's cloud-hosted black box setting
// (Section 6.3.2, Google AutoML Tables): the model lives behind a network
// service and the validation system can only exchange serving data for
// class probabilities. Server wraps any data.Model behind an HTTP JSON
// API; Client implements data.Model over that API, so predictors and
// validators can be trained against a remote model without any code
// changes.
package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
	"blackboxval/internal/imgdata"
	"blackboxval/internal/linalg"
	"blackboxval/internal/obs"
)

// wireColumn is the JSON form of one dataframe column. Missing numeric
// cells are encoded as null (JSON has no NaN).
type wireColumn struct {
	Name string     `json:"name"`
	Kind string     `json:"kind"` // "numeric", "categorical", "text"
	Num  []*float64 `json:"num,omitempty"`
	Str  []string   `json:"str,omitempty"`
}

// predictRequest is the body of POST /predict_proba.
type predictRequest struct {
	Columns []wireColumn `json:"columns,omitempty"`
	// Images are row-major pixel vectors for image models.
	Images [][]float64 `json:"images,omitempty"`
	Width  int         `json:"width,omitempty"`
	Height int         `json:"height,omitempty"`
}

// predictResponse is the body returned by POST /predict_proba.
type predictResponse struct {
	Probabilities [][]float64 `json:"probabilities"`
	NumClasses    int         `json:"num_classes"`
}

// encodeRequest serializes the features of a dataset (never its labels:
// the cloud model must not see ground truth).
func encodeRequest(ds *data.Dataset) predictRequest {
	var req predictRequest
	if ds.Tabular() {
		for _, c := range ds.Frame.Columns() {
			wc := wireColumn{Name: c.Name}
			switch c.Kind {
			case frame.Numeric:
				wc.Kind = "numeric"
				wc.Num = make([]*float64, len(c.Num))
				for i, v := range c.Num {
					if !math.IsNaN(v) {
						v := v
						wc.Num[i] = &v
					}
				}
			case frame.Categorical:
				wc.Kind = "categorical"
				wc.Str = c.Str
			case frame.Text:
				wc.Kind = "text"
				wc.Str = c.Str
			}
			req.Columns = append(req.Columns, wc)
		}
		return req
	}
	req.Images = ds.Images.Pixels
	req.Width = ds.Images.Width
	req.Height = ds.Images.Height
	return req
}

// decodeRequest reconstructs an unlabeled dataset on the server side.
func decodeRequest(req predictRequest, numClasses int) (*data.Dataset, error) {
	ds := &data.Dataset{Classes: make([]string, numClasses)}
	for i := range ds.Classes {
		ds.Classes[i] = fmt.Sprintf("class%d", i)
	}
	if len(req.Images) > 0 {
		if req.Width <= 0 || req.Height <= 0 {
			return nil, fmt.Errorf("cloud: image request lacks dimensions")
		}
		set := imgdata.NewSet(req.Width, req.Height)
		for i, px := range req.Images {
			if len(px) != req.Width*req.Height {
				return nil, fmt.Errorf("cloud: image %d has %d pixels, want %d", i, len(px), req.Width*req.Height)
			}
			set.Append(px)
		}
		ds.Images = set
		ds.Labels = make([]int, set.Len())
		return ds, nil
	}
	f := frame.New()
	n := -1
	for _, wc := range req.Columns {
		switch wc.Kind {
		case "numeric":
			num := make([]float64, len(wc.Num))
			for i, v := range wc.Num {
				if v == nil {
					num[i] = math.NaN()
				} else {
					num[i] = *v
				}
			}
			f.AddNumeric(wc.Name, num)
			n = len(num)
		case "categorical":
			f.AddCategorical(wc.Name, wc.Str)
			n = len(wc.Str)
		case "text":
			f.AddText(wc.Name, wc.Str)
			n = len(wc.Str)
		default:
			return nil, fmt.Errorf("cloud: unknown column kind %q", wc.Kind)
		}
	}
	if n < 0 {
		return nil, fmt.Errorf("cloud: request has no columns or images")
	}
	ds.Frame = f
	ds.Labels = make([]int, n)
	return ds, nil
}

// Server exposes a data.Model over HTTP. Mount its Handler and point a
// Client at the listen address.
type Server struct {
	model data.Model
}

// NewServer wraps a trained model.
func NewServer(model data.Model) *Server { return &Server{model: model} }

// Handler returns the HTTP handler implementing the prediction API:
//
//	POST /predict_proba  body: predictRequest  ->  predictResponse
//	GET  /healthz        -> 200 ok
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict_proba", s.handlePredict)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Join a sampled trace extracted upstream (obs.TraceMiddleware):
	// the backend_predict span is what the stitched waterfall shows as
	// the model-compute hop. Untraced requests skip all of this.
	if tc, traced := obs.TraceFromContext(r.Context()); traced && tc.Sampled() {
		_, span := obs.StartSpan(r.Context(), "backend_predict")
		if id := r.Header.Get(obs.RequestIDHeader); id != "" {
			span.SetAttr("request_id", id)
		}
		defer span.End()
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req predictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "invalid JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	ds, err := decodeRequest(req, s.model.NumClasses())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	proba := s.model.PredictProba(ds)
	resp := predictResponse{NumClasses: proba.Cols, Probabilities: make([][]float64, proba.Rows)}
	for i := 0; i < proba.Rows; i++ {
		resp.Probabilities[i] = append([]float64(nil), proba.Row(i)...)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client is a data.Model backed by a remote prediction service. The
// validation system treats it exactly like a local model: the ultimate
// black box.
type Client struct {
	// BaseURL of the service, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the default http.DefaultClient.
	HTTPClient *http.Client
	// Logger receives transport failures surfaced through the
	// error-less data.Model path (nil = the standard logger).
	Logger *log.Logger

	numClasses int
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// PredictProba implements data.Model by calling the remote service. Like
// any data.Model it has no error channel; transport failures are logged
// and then propagated by panicking, as a real deployment would page
// rather than silently continue. Callers that can handle errors (the
// gateway's backend path, health probes) should use PredictCtx instead.
func (c *Client) PredictProba(ds *data.Dataset) *linalg.Matrix {
	proba, err := c.Predict(ds)
	if err != nil {
		logger := c.Logger
		if logger == nil {
			logger = log.Default()
		}
		logger.Printf("cloud: prediction request to %s failed: %v", c.BaseURL, err)
		panic(fmt.Sprintf("cloud: prediction request failed: %v", err))
	}
	return proba
}

// Predict is the error-returning variant of PredictProba.
func (c *Client) Predict(ds *data.Dataset) (*linalg.Matrix, error) {
	return c.PredictCtx(context.Background(), ds)
}

// PredictCtx calls the remote service under the given context, so
// callers control per-request timeouts and cancellation. It is the
// primitive the other predict methods delegate to. A W3C trace context
// carried by ctx is propagated: sampled traces get a cloud_predict
// child span around the remote call, and the traceparent header rides
// the request so the backend's spans join the same trace.
func (c *Client) PredictCtx(ctx context.Context, ds *data.Dataset) (*linalg.Matrix, error) {
	tc, traced := obs.TraceFromContext(ctx)
	if traced && tc.Sampled() {
		spanCtx, span := obs.StartSpan(ctx, "cloud_predict")
		span.SetMetric("rows", float64(ds.Len()))
		defer span.End()
		ctx = spanCtx
		tc = span.TraceContext()
	}
	payload, err := json.Marshal(encodeRequest(ds))
	if err != nil {
		return nil, fmt.Errorf("cloud: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/predict_proba", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("cloud: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traced {
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("cloud: calling service: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cloud: service returned %s: %s", resp.Status, msg)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cloud: reading response: %w", err)
	}
	out, numClasses, err := ParseProbaResponse(body)
	if err != nil {
		return nil, err
	}
	c.numClasses = numClasses
	return out, nil
}

// EncodeRequest serializes a dataset's features (never its labels) as a
// /predict_proba request body, for callers that speak the wire format
// directly — e.g. traffic generators driving the gateway.
func EncodeRequest(ds *data.Dataset) ([]byte, error) {
	payload, err := json.Marshal(encodeRequest(ds))
	if err != nil {
		return nil, fmt.Errorf("cloud: encoding request: %w", err)
	}
	return payload, nil
}

// DecodeRequest reconstructs the unlabeled serving rows from a raw
// /predict_proba request body. classes names the model's classes (the
// decoded dataset needs a class list; pass the manifest's). It is
// exported so the shadow-validation gateway can recover the raw
// feature columns of a tapped request for incident forensics without
// re-implementing the wire schema.
func DecodeRequest(body []byte, classes []string) (*data.Dataset, error) {
	var req predictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("cloud: decoding request: %w", err)
	}
	ds, err := decodeRequest(req, len(classes))
	if err != nil {
		return nil, err
	}
	ds.Classes = append([]string(nil), classes...)
	return ds, nil
}

// ParseProbaResponse decodes the JSON body of a /predict_proba response
// into a probability matrix. It is exported so serving-path components
// (e.g. the shadow-validation gateway) can tap logged response bodies
// without re-implementing the wire schema.
func ParseProbaResponse(body []byte) (proba *linalg.Matrix, numClasses int, err error) {
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return nil, 0, fmt.Errorf("cloud: decoding response: %w", err)
	}
	if pr.NumClasses <= 0 {
		return nil, 0, fmt.Errorf("cloud: response reports %d classes", pr.NumClasses)
	}
	out := linalg.NewMatrix(len(pr.Probabilities), pr.NumClasses)
	for i, row := range pr.Probabilities {
		if len(row) != pr.NumClasses {
			return nil, 0, fmt.Errorf("cloud: row %d has %d probabilities, want %d", i, len(row), pr.NumClasses)
		}
		copy(out.Row(i), row)
	}
	return out, pr.NumClasses, nil
}

// NumClasses implements data.Model. It is learned from the first
// response; call Predict once (e.g. via a health probe batch) before
// relying on it.
func (c *Client) NumClasses() int { return c.numClasses }
