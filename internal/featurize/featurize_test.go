package featurize

import (
	"math"
	"testing"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
	"blackboxval/internal/imgdata"
)

func tabularDS() *data.Dataset {
	f := frame.New().
		AddNumeric("x", []float64{1, 2, 3, 4}).
		AddCategorical("c", []string{"a", "b", "a", "b"}).
		AddText("t", []string{"hello world", "foo bar", "hello", "bar"})
	return &data.Dataset{Frame: f, Labels: []int{0, 1, 0, 1}, Classes: []string{"n", "y"}}
}

func TestFitTransformShapes(t *testing.T) {
	p := &Pipeline{HashDims: 16}
	ds := tabularDS()
	if err := p.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if p.Width() != 1+2+16 {
		t.Fatalf("width = %d", p.Width())
	}
	X, err := p.Transform(ds)
	if err != nil {
		t.Fatal(err)
	}
	if X.Rows != 4 || X.Cols != 19 {
		t.Fatalf("shape = %dx%d", X.Rows, X.Cols)
	}
}

func TestNumericStandardization(t *testing.T) {
	p := &Pipeline{HashDims: 8}
	ds := tabularDS()
	if err := p.Fit(ds); err != nil {
		t.Fatal(err)
	}
	X, _ := p.Transform(ds)
	// mean of {1,2,3,4} is 2.5, std = sqrt(1.25)
	want := (1 - 2.5) / math.Sqrt(1.25)
	if math.Abs(X.At(0, 0)-want) > 1e-12 {
		t.Fatalf("standardized value = %v, want %v", X.At(0, 0), want)
	}
	// column mean approx 0
	sum := 0.0
	for i := 0; i < 4; i++ {
		sum += X.At(i, 0)
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("standardized column mean = %v", sum/4)
	}
}

func TestMissingNumericMapsToZero(t *testing.T) {
	f := frame.New().AddNumeric("x", []float64{1, 2, 3, math.NaN()})
	ds := &data.Dataset{Frame: f, Labels: []int{0, 0, 0, 0}, Classes: []string{"a"}}
	p := &Pipeline{}
	if err := p.Fit(ds); err != nil {
		t.Fatal(err)
	}
	X, _ := p.Transform(ds)
	if X.At(3, 0) != 0 {
		t.Fatalf("missing value featurized to %v, want 0", X.At(3, 0))
	}
	if math.IsNaN(X.At(3, 0)) {
		t.Fatal("NaN leaked into features")
	}
}

func TestOneHotEncoding(t *testing.T) {
	p := &Pipeline{HashDims: 4}
	ds := tabularDS()
	p.Fit(ds)
	X, _ := p.Transform(ds)
	// categories sorted: a -> offset 1, b -> offset 2
	if X.At(0, 1) != 1 || X.At(0, 2) != 0 {
		t.Fatalf("row 0 one-hot = %v %v", X.At(0, 1), X.At(0, 2))
	}
	if X.At(1, 1) != 0 || X.At(1, 2) != 1 {
		t.Fatalf("row 1 one-hot = %v %v", X.At(1, 1), X.At(1, 2))
	}
}

func TestUnknownCategoryZeroVector(t *testing.T) {
	p := &Pipeline{HashDims: 4}
	train := tabularDS()
	p.Fit(train)
	serve := tabularDS()
	serve.Frame.Column("c").Str[0] = "NEVER-SEEN"
	serve.Frame.Column("c").Str[1] = "" // missing
	X, err := p.Transform(serve)
	if err != nil {
		t.Fatal(err)
	}
	if X.At(0, 1) != 0 || X.At(0, 2) != 0 {
		t.Fatal("unknown category should produce a zero block")
	}
	if X.At(1, 1) != 0 || X.At(1, 2) != 0 {
		t.Fatal("missing category should produce a zero block")
	}
}

func TestTextHashingDeterministicAndNormalized(t *testing.T) {
	p := &Pipeline{HashDims: 32}
	ds := tabularDS()
	p.Fit(ds)
	X1, _ := p.Transform(ds)
	X2, _ := p.Transform(ds)
	for i := range X1.Data {
		if X1.Data[i] != X2.Data[i] {
			t.Fatal("hashing not deterministic")
		}
	}
	// text block of row 0 should be L2-normalized
	norm := 0.0
	for j := 3; j < 35; j++ {
		norm += X1.At(0, j) * X1.At(0, j)
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("text block norm² = %v, want 1", norm)
	}
}

func TestTextCaseInsensitive(t *testing.T) {
	f1 := frame.New().AddText("t", []string{"Hello World"})
	f2 := frame.New().AddText("t", []string{"hello world"})
	d1 := &data.Dataset{Frame: f1, Labels: []int{0}, Classes: []string{"a"}}
	d2 := &data.Dataset{Frame: f2, Labels: []int{0}, Classes: []string{"a"}}
	p := &Pipeline{HashDims: 16}
	p.Fit(d1)
	X1, _ := p.Transform(d1)
	X2, _ := p.Transform(d2)
	for i := range X1.Data {
		if X1.Data[i] != X2.Data[i] {
			t.Fatal("hashing should be case-insensitive")
		}
	}
}

func TestImagePipelineIdentity(t *testing.T) {
	set := imgdata.NewSet(2, 2)
	set.Append([]float64{0.1, 0.2, 0.3, 0.4})
	ds := &data.Dataset{Images: set, Labels: []int{0}, Classes: []string{"a"}}
	p := &Pipeline{}
	if err := p.Fit(ds); err != nil {
		t.Fatal(err)
	}
	X, err := p.Transform(ds)
	if err != nil {
		t.Fatal(err)
	}
	if X.Rows != 1 || X.Cols != 4 || X.At(0, 2) != 0.3 {
		t.Fatalf("image transform wrong: %+v", X)
	}
}

func TestTransformBeforeFitErrors(t *testing.T) {
	p := &Pipeline{}
	if _, err := p.Transform(tabularDS()); err == nil {
		t.Fatal("expected error for unfitted pipeline")
	}
}

func TestSchemaMismatchErrors(t *testing.T) {
	p := &Pipeline{HashDims: 8}
	p.Fit(tabularDS())
	other := &data.Dataset{
		Frame:   frame.New().AddNumeric("z", []float64{1}),
		Labels:  []int{0},
		Classes: []string{"a"},
	}
	if _, err := p.Transform(other); err == nil {
		t.Fatal("expected error for missing column")
	}
	set := imgdata.NewSet(2, 2)
	set.Append([]float64{1, 2, 3, 4})
	img := &data.Dataset{Images: set, Labels: []int{0}, Classes: []string{"a"}}
	if _, err := p.Transform(img); err == nil {
		t.Fatal("expected error for modality mismatch")
	}
}

func TestConstantColumnNoNaN(t *testing.T) {
	f := frame.New().AddNumeric("x", []float64{5, 5, 5})
	ds := &data.Dataset{Frame: f, Labels: []int{0, 0, 0}, Classes: []string{"a"}}
	p := &Pipeline{}
	p.Fit(ds)
	X, _ := p.Transform(ds)
	for _, v := range X.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("constant column produced NaN/Inf")
		}
	}
}
