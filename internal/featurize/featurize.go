// Package featurize implements the black box model's feature map ϕ: a
// fit-on-train/transform-later pipeline that standardizes numeric columns,
// one-hot encodes categorical columns and hashes word-level n-grams of
// text columns into a fixed-width sparse-ish vector — mirroring the
// scikit-learn pipeline of the paper's Section 6. Crucially, the
// performance prediction system never sees this package's output; it is
// internal to the black box.
package featurize

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
	"blackboxval/internal/linalg"
)

// DefaultHashDims is the default width of the hashed text feature space.
const DefaultHashDims = 512

// Pipeline is a fitted feature map. Fit it on training data once, then
// apply Transform to any dataset with the same schema.
type Pipeline struct {
	HashDims int // width of the hashed n-gram space per text column (0 = DefaultHashDims)

	fitted  bool
	tabular bool
	columns []columnEncoder
	width   int
}

type columnEncoder struct {
	name string
	kind frame.Kind
	// numeric standardization
	mean, std float64
	// categorical vocabulary: category -> offset within this column's block
	categories map[string]int
	width      int
}

// Fit learns the featurization parameters from the training dataset.
func (p *Pipeline) Fit(ds *data.Dataset) error {
	if ds.Tabular() {
		return p.fitTabular(ds.Frame)
	}
	// Images: the feature map is the identity on pixel vectors.
	p.fitted = true
	p.tabular = false
	p.width = ds.Images.PixelCount()
	return nil
}

func (p *Pipeline) fitTabular(f *frame.DataFrame) error {
	if f.NumCols() == 0 {
		return fmt.Errorf("featurize: cannot fit on a frame with no columns")
	}
	hashDims := p.HashDims
	if hashDims <= 0 {
		hashDims = DefaultHashDims
	}
	p.columns = p.columns[:0]
	p.width = 0
	for _, c := range f.Columns() {
		enc := columnEncoder{name: c.Name, kind: c.Kind}
		switch c.Kind {
		case frame.Numeric:
			var vals []float64
			for _, v := range c.Num {
				if !math.IsNaN(v) {
					vals = append(vals, v)
				}
			}
			enc.mean = mean(vals)
			enc.std = std(vals, enc.mean)
			if enc.std == 0 {
				enc.std = 1
			}
			enc.width = 1
		case frame.Categorical:
			seen := map[string]bool{}
			for _, v := range c.Str {
				if v != "" {
					seen[v] = true
				}
			}
			cats := make([]string, 0, len(seen))
			for v := range seen {
				cats = append(cats, v)
			}
			sort.Strings(cats)
			enc.categories = make(map[string]int, len(cats))
			for i, v := range cats {
				enc.categories[v] = i
			}
			enc.width = len(cats)
		case frame.Text:
			enc.width = hashDims
		}
		p.columns = append(p.columns, enc)
		p.width += enc.width
	}
	p.fitted = true
	p.tabular = true
	return nil
}

// Width returns the dimensionality of the fitted feature space.
func (p *Pipeline) Width() int { return p.width }

// Transform featurizes a dataset using the fitted parameters. Unknown
// categories and missing values map to zero vectors; missing numerics to
// zero (the standardized mean).
func (p *Pipeline) Transform(ds *data.Dataset) (*linalg.Matrix, error) {
	if !p.fitted {
		return nil, fmt.Errorf("featurize: pipeline not fitted")
	}
	if ds.Tabular() != p.tabular {
		return nil, fmt.Errorf("featurize: dataset modality differs from fitted modality")
	}
	if !p.tabular {
		out := linalg.NewMatrix(ds.Images.Len(), p.width)
		for i, px := range ds.Images.Pixels {
			if len(px) != p.width {
				return nil, fmt.Errorf("featurize: image %d has %d pixels, want %d", i, len(px), p.width)
			}
			copy(out.Row(i), px)
		}
		return out, nil
	}

	n := ds.Frame.NumRows()
	out := linalg.NewMatrix(n, p.width)
	offset := 0
	for _, enc := range p.columns {
		col := ds.Frame.Column(enc.name)
		if col == nil {
			return nil, fmt.Errorf("featurize: dataset lacks fitted column %q", enc.name)
		}
		if col.Kind != enc.kind {
			return nil, fmt.Errorf("featurize: column %q is %v, fitted as %v", enc.name, col.Kind, enc.kind)
		}
		switch enc.kind {
		case frame.Numeric:
			for i := 0; i < n; i++ {
				v := col.Num[i]
				if math.IsNaN(v) {
					continue // missing -> 0 (the standardized mean)
				}
				out.Set(i, offset, (v-enc.mean)/enc.std)
			}
		case frame.Categorical:
			for i := 0; i < n; i++ {
				if j, ok := enc.categories[col.Str[i]]; ok {
					out.Set(i, offset+j, 1)
				}
				// unknown or missing categories produce an all-zero block,
				// exactly like scikit-learn's handle_unknown="ignore"
			}
		case frame.Text:
			for i := 0; i < n; i++ {
				hashNGrams(col.Str[i], out.Row(i)[offset:offset+enc.width])
			}
		}
		offset += enc.width
	}
	return out, nil
}

// hashNGrams accumulates word uni- and bi-gram counts of text into dst via
// the hashing trick, then L2-normalizes the block.
func hashNGrams(text string, dst []float64) {
	words := strings.Fields(strings.ToLower(text))
	dims := len(dst)
	add := func(gram string) {
		h := fnv.New32a()
		h.Write([]byte(gram))
		dst[int(h.Sum32())%dims]++
	}
	for i, w := range words {
		add(w)
		if i+1 < len(words) {
			add(w + " " + words[i+1])
		}
	}
	norm := 0.0
	for _, v := range dst {
		norm += v * v
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for i := range dst {
			dst[i] *= inv
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func std(xs []float64, m float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
