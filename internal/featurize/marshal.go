package featurize

import (
	"encoding/json"

	"blackboxval/internal/frame"
)

// JSON serialization of fitted pipelines, so a trained black box can be
// shipped to a serving process with its feature map intact.

type encoderState struct {
	Name       string         `json:"name"`
	Kind       frame.Kind     `json:"kind"`
	Mean       float64        `json:"mean,omitempty"`
	Std        float64        `json:"std,omitempty"`
	Categories map[string]int `json:"categories,omitempty"`
	Width      int            `json:"width"`
}

type pipelineState struct {
	HashDims int            `json:"hash_dims"`
	Fitted   bool           `json:"fitted"`
	Tabular  bool           `json:"tabular"`
	Columns  []encoderState `json:"columns,omitempty"`
	Width    int            `json:"width"`
}

// MarshalJSON implements json.Marshaler.
func (p *Pipeline) MarshalJSON() ([]byte, error) {
	st := pipelineState{
		HashDims: p.HashDims,
		Fitted:   p.fitted,
		Tabular:  p.tabular,
		Width:    p.width,
	}
	for _, c := range p.columns {
		st.Columns = append(st.Columns, encoderState{
			Name: c.name, Kind: c.kind, Mean: c.mean, Std: c.std,
			Categories: c.categories, Width: c.width,
		})
	}
	return json.Marshal(st)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Pipeline) UnmarshalJSON(b []byte) error {
	var st pipelineState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	p.HashDims = st.HashDims
	p.fitted = st.Fitted
	p.tabular = st.Tabular
	p.width = st.Width
	p.columns = nil
	for _, c := range st.Columns {
		p.columns = append(p.columns, columnEncoder{
			name: c.Name, kind: c.Kind, mean: c.Mean, std: c.Std,
			categories: c.Categories, width: c.Width,
		})
	}
	return nil
}
