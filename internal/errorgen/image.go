package errorgen

import (
	"math"
	"math/rand"

	"blackboxval/internal/data"
)

// ImageNoise adds gaussian pixel noise with a randomly chosen standard
// deviation (up to 0.5) to a proportion of the input images.
type ImageNoise struct{}

// Name implements Generator.
func (ImageNoise) Name() string { return "image_noise" }

// Corrupt implements Generator.
func (ImageNoise) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	sigma := rng.Float64() * 0.5
	for i := 0; i < out.Images.Len(); i++ {
		if rng.Float64() < p {
			out.Images.AddGaussianNoise(i, sigma, rng)
		}
	}
	return out
}

// ImageRotation rotates a proportion of the input images by randomly
// chosen angles.
type ImageRotation struct{}

// Name implements Generator.
func (ImageRotation) Name() string { return "image_rotation" }

// Corrupt implements Generator.
func (ImageRotation) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	for i := 0; i < out.Images.Len(); i++ {
		if rng.Float64() < p {
			angle := (rng.Float64()*2 - 1) * math.Pi // up to ±180°
			out.Images.Rotate(i, angle)
		}
	}
	return out
}
