package errorgen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/frame"
	"blackboxval/internal/linalg"
)

func testDS() *data.Dataset { return datagen.Income(400, 1) }

// corruptedCells counts cells that differ between two frames.
func corruptedCells(a, b *data.Dataset) int {
	diff := 0
	for _, ca := range a.Frame.Columns() {
		cb := b.Frame.Column(ca.Name)
		if ca.Kind == frame.Numeric {
			for i, v := range ca.Num {
				va, vb := v, cb.Num[i]
				if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
					diff++
				}
			}
		} else {
			for i, v := range ca.Str {
				if v != cb.Str[i] {
					diff++
				}
			}
		}
	}
	return diff
}

func TestGeneratorsDoNotMutateInput(t *testing.T) {
	gens := append(KnownTabular(), UnknownTabular()...)
	gens = append(gens, EncodingErrors{}, MissingValues{Numeric: true}, NoOp{})
	for _, g := range gens {
		orig := testDS()
		ref := orig.Clone()
		g.Corrupt(orig, 0.5, rand.New(rand.NewSource(1)))
		if corruptedCells(orig, ref) != 0 {
			t.Fatalf("%s mutated its input", g.Name())
		}
	}
}

func TestZeroMagnitudeLeavesDataUnchangedForCellErrors(t *testing.T) {
	for _, g := range []Generator{MissingValues{}, Outliers{}, Scaling{}, Typos{}, Smearing{}, FlippedSigns{}, EncodingErrors{}} {
		ds := testDS()
		out := g.Corrupt(ds, 0, rand.New(rand.NewSource(1)))
		if corruptedCells(ds, out) != 0 {
			t.Fatalf("%s corrupted cells at magnitude 0", g.Name())
		}
	}
}

func TestMissingValuesIntroducesMissing(t *testing.T) {
	ds := testDS()
	out := MissingValues{}.Corrupt(ds, 0.5, rand.New(rand.NewSource(2)))
	missing := 0
	for _, name := range out.Frame.NamesOfKind(frame.Categorical) {
		col := out.Frame.Column(name)
		for i := 0; i < col.Len(); i++ {
			if frame.IsMissing(col, i) {
				missing++
			}
		}
	}
	if missing == 0 {
		t.Fatal("no missing values introduced")
	}
	// Numeric columns untouched by the categorical variant.
	for _, name := range out.Frame.NamesOfKind(frame.Numeric) {
		col := out.Frame.Column(name)
		for i := 0; i < col.Len(); i++ {
			if frame.IsMissing(col, i) {
				t.Fatal("categorical missing generator hit a numeric column")
			}
		}
	}
}

func TestMissingValuesNumericVariant(t *testing.T) {
	ds := testDS()
	out := MissingValues{Numeric: true}.Corrupt(ds, 0.5, rand.New(rand.NewSource(2)))
	missing := 0
	for _, name := range out.Frame.NamesOfKind(frame.Numeric) {
		col := out.Frame.Column(name)
		for i := 0; i < col.Len(); i++ {
			if frame.IsMissing(col, i) {
				missing++
			}
		}
	}
	if missing == 0 {
		t.Fatal("no numeric missing values introduced")
	}
}

func TestOutliersChangeScaleOfValues(t *testing.T) {
	ds := testDS()
	out := Outliers{}.Corrupt(ds, 0.3, rand.New(rand.NewSource(3)))
	if corruptedCells(ds, out) == 0 {
		t.Fatal("outliers changed nothing")
	}
}

func TestScalingMultipliesByPowerOfTen(t *testing.T) {
	ds := testDS()
	out := Scaling{}.Corrupt(ds, 0.4, rand.New(rand.NewSource(4)))
	found := false
	for _, name := range ds.Frame.NamesOfKind(frame.Numeric) {
		orig := ds.Frame.Column(name).Num
		corr := out.Frame.Column(name).Num
		for i := range orig {
			if orig[i] == corr[i] || orig[i] == 0 {
				continue
			}
			ratio := corr[i] / orig[i]
			ok := false
			for _, f := range []float64{10, 100, 1000} {
				if math.Abs(ratio-f) < 1e-9*f {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("scaling ratio %v is not a power of ten", ratio)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("scaling changed nothing")
	}
}

func TestSwappedColumnsExchangesValues(t *testing.T) {
	ds := testDS()
	out := SwappedColumns{}.Corrupt(ds, 0.5, rand.New(rand.NewSource(5)))
	if corruptedCells(ds, out) == 0 {
		t.Fatal("swap changed nothing")
	}
}

func TestLeetspeak(t *testing.T) {
	if got := Leetspeak("hello total"); got != "h3110 70741" {
		t.Fatalf("Leetspeak = %q", got)
	}
}

func TestAdversarialTextOnTweets(t *testing.T) {
	ds := datagen.Tweets(200, 1)
	out := AdversarialText{}.Corrupt(ds, 1.0, rand.New(rand.NewSource(6)))
	changed := 0
	for i, v := range out.Frame.Column("text").Str {
		if v != ds.Frame.Column("text").Str[i] {
			changed++
		}
		if strings.ContainsAny(ds.Frame.Column("text").Str[i], "elo") && v == ds.Frame.Column("text").Str[i] {
			t.Fatalf("row %d should have been leetspeaked", i)
		}
	}
	if changed < 100 {
		t.Fatalf("only %d rows changed at magnitude 1", changed)
	}
}

func TestTyposBreakVocabulary(t *testing.T) {
	ds := testDS()
	out := Typos{}.Corrupt(ds, 1.0, rand.New(rand.NewSource(7)))
	if corruptedCells(ds, out) == 0 {
		t.Fatal("typos changed nothing")
	}
}

func TestSmearingStaysWithinTenPercent(t *testing.T) {
	ds := testDS()
	out := Smearing{}.Corrupt(ds, 1.0, rand.New(rand.NewSource(8)))
	for _, name := range ds.Frame.NamesOfKind(frame.Numeric) {
		orig := ds.Frame.Column(name).Num
		corr := out.Frame.Column(name).Num
		for i := range orig {
			if orig[i] == 0 {
				continue
			}
			rel := math.Abs(corr[i]-orig[i]) / math.Abs(orig[i])
			if rel > 0.100001 {
				t.Fatalf("smearing moved value by %v%%", rel*100)
			}
		}
	}
}

func TestFlippedSignsOnlyFlips(t *testing.T) {
	ds := testDS()
	out := FlippedSigns{}.Corrupt(ds, 1.0, rand.New(rand.NewSource(9)))
	flipped := 0
	for _, name := range ds.Frame.NamesOfKind(frame.Numeric) {
		orig := ds.Frame.Column(name).Num
		corr := out.Frame.Column(name).Num
		for i := range orig {
			if corr[i] == -orig[i] && orig[i] != 0 {
				flipped++
			} else if corr[i] != orig[i] {
				t.Fatalf("flipped sign produced %v from %v", corr[i], orig[i])
			}
		}
	}
	if flipped == 0 {
		t.Fatal("nothing flipped")
	}
}

func TestEncodingErrorsProduceMojibake(t *testing.T) {
	ds := testDS()
	out := EncodingErrors{}.Corrupt(ds, 1.0, rand.New(rand.NewSource(10)))
	if corruptedCells(ds, out) == 0 {
		t.Fatal("encoding errors changed nothing")
	}
}

// constModel is a trivial model whose certainty is encoded in the first
// numeric feature, for testing EntropyMissing.
type constModel struct{}

func (constModel) PredictProba(ds *data.Dataset) *linalg.Matrix {
	col := ds.Frame.Columns()[0]
	out := linalg.NewMatrix(col.Len(), 2)
	for i := 0; i < col.Len(); i++ {
		// older rows = more certain
		p := 0.5 + 0.5*float64(i)/float64(col.Len())
		out.Set(i, 0, p)
		out.Set(i, 1, 1-p)
	}
	return out
}
func (constModel) NumClasses() int { return 2 }

func TestEntropyMissingTargetsEasyExamples(t *testing.T) {
	ds := testDS()
	out := EntropyMissing{Model: constModel{}}.Corrupt(ds, 0.25, rand.New(rand.NewSource(11)))
	// The most certain rows are the last quarter; they should be the
	// (only) candidates for discarded values.
	n := ds.Len()
	missingEarly, missingLate := 0, 0
	for _, col := range out.Frame.Columns() {
		for i := 0; i < n; i++ {
			if frame.IsMissing(col, i) && !frame.IsMissing(ds.Frame.Column(col.Name), i) {
				if i < n/2 {
					missingEarly++
				} else {
					missingLate++
				}
			}
		}
	}
	if missingLate == 0 {
		t.Fatal("entropy missing discarded nothing")
	}
	if missingEarly > 0 {
		t.Fatalf("entropy missing hit uncertain rows: early=%d late=%d", missingEarly, missingLate)
	}
}

func TestImageNoiseAndRotation(t *testing.T) {
	ds := datagen.Digits(50, 1)
	for _, g := range Image() {
		out := g.Corrupt(ds, 1.0, rand.New(rand.NewSource(12)))
		changed := 0
		for i := range out.Images.Pixels {
			for j := range out.Images.Pixels[i] {
				if out.Images.Pixels[i][j] != ds.Images.Pixels[i][j] {
					changed++
					break
				}
			}
		}
		if changed < 25 {
			t.Fatalf("%s changed only %d images at magnitude 1", g.Name(), changed)
		}
		// input untouched
		if &out.Images.Pixels[0][0] == &ds.Images.Pixels[0][0] {
			t.Fatalf("%s aliases input pixels", g.Name())
		}
	}
}

func TestMixtureAppliesAtLeastOne(t *testing.T) {
	ds := testDS()
	mix := Mixture{Generators: KnownTabular()}
	rng := rand.New(rand.NewSource(13))
	applied := 0
	for trial := 0; trial < 20; trial++ {
		out := mix.Corrupt(ds, 0.8, rng)
		if corruptedCells(ds, out) > 0 {
			applied++
		}
	}
	// With magnitude 0.8 nearly all trials must actually corrupt data.
	if applied < 15 {
		t.Fatalf("mixture corrupted data in only %d/20 trials", applied)
	}
}

func TestMixtureName(t *testing.T) {
	mix := Mixture{Generators: []Generator{MissingValues{}, Scaling{}}}
	if mix.Name() != "mix(missing+scaling)" {
		t.Fatalf("name = %q", mix.Name())
	}
}

func TestNoOpReturnsIdenticalCopy(t *testing.T) {
	ds := testDS()
	out := NoOp{}.Corrupt(ds, 1, rand.New(rand.NewSource(14)))
	if corruptedCells(ds, out) != 0 {
		t.Fatal("NoOp changed data")
	}
	out.Frame.Column("age").Num[0] = -99
	if ds.Frame.Column("age").Num[0] == -99 {
		t.Fatal("NoOp aliases input")
	}
}

func TestPickColumnsAlwaysNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 50; i++ {
		got := pickColumns([]string{"a", "b", "c"}, rng)
		if len(got) == 0 || len(got) > 3 {
			t.Fatalf("pickColumns returned %v", got)
		}
	}
	if pickColumns(nil, rng) != nil {
		t.Fatal("empty input should return nil")
	}
}
