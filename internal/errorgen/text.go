package errorgen

import (
	"math/rand"
	"strings"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
)

// AdversarialText simulates an adversarial "leetspeak" attack on text
// columns: attackers change the spelling of their messages (e.g. "hello
// world" -> "h3110 w041d") to fool the classifier. A fraction of rows is
// rewritten entirely.
type AdversarialText struct{}

// Name implements Generator.
func (AdversarialText) Name() string { return "leetspeak" }

var leetReplacer = strings.NewReplacer(
	"e", "3", "E", "3",
	"l", "1", "L", "1",
	"o", "0", "O", "0",
	"a", "4", "A", "4",
	"t", "7", "T", "7",
	"i", "!", "I", "!",
)

// Leetspeak converts text to its leetspeak form.
func Leetspeak(text string) string { return leetReplacer.Replace(text) }

// Corrupt implements Generator.
func (AdversarialText) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	for _, name := range out.Frame.NamesOfKind(frame.Text) {
		col := out.Frame.Column(name)
		for i, v := range col.Str {
			if rng.Float64() < p {
				col.Str[i] = Leetspeak(v)
			}
		}
	}
	return out
}

// EncodingErrors introduces mojibake into categorical columns, as caused
// by mismatched character encodings in ingestion code (the example error
// generator of the paper's Section 4).
type EncodingErrors struct{}

// Name implements Generator.
func (EncodingErrors) Name() string { return "encoding" }

var mojibakeReplacer = strings.NewReplacer(
	"e", "é",
	"o", "œ",
	"u", "ü",
	"a", "å",
)

// Corrupt implements Generator.
func (EncodingErrors) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	for _, name := range pickColumns(out.Frame.NamesOfKind(frame.Categorical), rng) {
		col := out.Frame.Column(name)
		for i, v := range col.Str {
			if v != "" && rng.Float64() < p {
				col.Str[i] = mojibakeReplacer.Replace(v)
			}
		}
	}
	return out
}

// Typos introduces keyboard-style typos into a random proportion of the
// values of a categorical attribute. One of the paper's "unknown" error
// types: its effect on the feature map mimics a missing value, since the
// corrupted token falls out of the one-hot vocabulary.
type Typos struct{}

// Name implements Generator.
func (Typos) Name() string { return "typos" }

// Corrupt implements Generator.
func (Typos) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	for _, name := range pickColumns(out.Frame.NamesOfKind(frame.Categorical), rng) {
		col := out.Frame.Column(name)
		for i, v := range col.Str {
			if v != "" && rng.Float64() < p {
				col.Str[i] = introduceTypo(v, rng)
			}
		}
	}
	return out
}

// introduceTypo applies one random character-level edit.
func introduceTypo(s string, rng *rand.Rand) string {
	runes := []rune(s)
	if len(runes) == 0 {
		return s
	}
	pos := rng.Intn(len(runes))
	switch rng.Intn(3) {
	case 0: // duplicate a character
		runes = append(runes[:pos+1], runes[pos:]...)
	case 1: // drop a character
		runes = append(runes[:pos], runes[pos+1:]...)
	default: // replace with a neighbor letter
		runes[pos] = rune('a' + rng.Intn(26))
	}
	if len(runes) == 0 {
		return "x"
	}
	return string(runes)
}
