package errorgen

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"blackboxval/internal/frame"
)

func TestExtendedGeneratorsDoNotMutateInput(t *testing.T) {
	for _, g := range ExtendedTabular() {
		orig := testDS()
		ref := orig.Clone()
		g.Corrupt(orig, 0.6, rand.New(rand.NewSource(1)))
		if corruptedCells(orig, ref) != 0 {
			t.Fatalf("%s mutated its input", g.Name())
		}
	}
}

func TestCaseShiftBreaksVocabulary(t *testing.T) {
	ds := testDS()
	out := CaseShift{}.Corrupt(ds, 1.0, rand.New(rand.NewSource(2)))
	changed := 0
	for _, name := range ds.Frame.NamesOfKind(frame.Categorical) {
		orig := ds.Frame.Column(name).Str
		corr := out.Frame.Column(name).Str
		for i := range orig {
			if orig[i] == corr[i] {
				continue
			}
			changed++
			if !strings.EqualFold(orig[i], corr[i]) {
				t.Fatalf("case shift altered letters: %q -> %q", orig[i], corr[i])
			}
		}
	}
	if changed == 0 {
		t.Fatal("case shift changed nothing")
	}
}

func TestNullTokensOnlyUseKnownLiterals(t *testing.T) {
	ds := testDS()
	out := NullTokens{}.Corrupt(ds, 1.0, rand.New(rand.NewSource(3)))
	lits := map[string]bool{}
	for _, l := range nullLiterals {
		lits[l] = true
	}
	changed := 0
	for _, name := range ds.Frame.NamesOfKind(frame.Categorical) {
		orig := ds.Frame.Column(name).Str
		corr := out.Frame.Column(name).Str
		for i := range orig {
			if orig[i] != corr[i] {
				changed++
				if !lits[corr[i]] {
					t.Fatalf("unexpected replacement %q", corr[i])
				}
			}
		}
	}
	if changed == 0 {
		t.Fatal("null tokens changed nothing")
	}
}

func TestDuplicateRowsKeepsShape(t *testing.T) {
	ds := testDS()
	out := DuplicateRows{}.Corrupt(ds, 0.8, rand.New(rand.NewSource(4)))
	if out.Len() != ds.Len() {
		t.Fatalf("row count changed: %d -> %d", ds.Len(), out.Len())
	}
	// Heavy duplication collapses the number of distinct ages.
	distinct := func(xs []float64) int {
		seen := map[float64]bool{}
		for _, v := range xs {
			seen[v] = true
		}
		return len(seen)
	}
	before := distinct(ds.Frame.Column("age").Num)
	after := distinct(out.Frame.Column("age").Num)
	if after >= before {
		t.Fatalf("duplication did not reduce distinct values: %d -> %d", before, after)
	}
}

func TestDuplicateRowsZeroMagnitudeIdentity(t *testing.T) {
	ds := testDS()
	out := DuplicateRows{}.Corrupt(ds, 0, rand.New(rand.NewSource(5)))
	if corruptedCells(ds, out) != 0 {
		t.Fatal("zero-magnitude duplication changed rows")
	}
}

func TestClippedValuesSaturatesTop(t *testing.T) {
	ds := testDS()
	out := ClippedValues{}.Corrupt(ds, 0.9, rand.New(rand.NewSource(6)))
	clippedSomething := false
	for _, name := range ds.Frame.NamesOfKind(frame.Numeric) {
		orig := append([]float64(nil), ds.Frame.Column(name).Num...)
		corr := out.Frame.Column(name).Num
		sort.Float64s(orig)
		maxOrig := orig[len(orig)-1]
		maxCorr := corr[0]
		for _, v := range corr {
			if v > maxCorr {
				maxCorr = v
			}
		}
		if maxCorr < maxOrig {
			clippedSomething = true
		}
		// Clipping never increases values.
		for i, v := range out.Frame.Column(name).Num {
			if v > ds.Frame.Column(name).Num[i]+1e-12 {
				t.Fatal("clipping increased a value")
			}
		}
	}
	if !clippedSomething {
		t.Fatal("nothing was clipped at magnitude 0.9")
	}
}

func TestShuffledColumnPreservesMarginal(t *testing.T) {
	ds := testDS()
	out := ShuffledColumn{}.Corrupt(ds, 1.0, rand.New(rand.NewSource(7)))
	// Find the shuffled column: same multiset, different order.
	foundShuffled := false
	for _, name := range ds.Frame.NamesOfKind(frame.Numeric) {
		orig := append([]float64(nil), ds.Frame.Column(name).Num...)
		corr := append([]float64(nil), out.Frame.Column(name).Num...)
		sameOrder := true
		for i := range orig {
			if orig[i] != corr[i] {
				sameOrder = false
				break
			}
		}
		if sameOrder {
			continue
		}
		foundShuffled = true
		sort.Float64s(orig)
		sort.Float64s(corr)
		for i := range orig {
			if math.Abs(orig[i]-corr[i]) > 1e-12 {
				t.Fatalf("column %s marginal changed by shuffling", name)
			}
		}
	}
	if !foundShuffled {
		t.Fatal("no column was shuffled at magnitude 1")
	}
}

func TestColumnPercentileHelpers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if columnPercentile(xs, 1) != 5 || columnPercentile(xs, 0) != 1 {
		t.Fatal("percentile extremes wrong")
	}
	if columnPercentile(nil, 0.5) != 0 {
		t.Fatal("empty column should yield 0")
	}
	withNaN := []float64{math.NaN(), 2, 4}
	if columnPercentile(withNaN, 1) != 4 {
		t.Fatal("NaN not skipped")
	}
}

func TestExtendedTabularList(t *testing.T) {
	gens := ExtendedTabular()
	if len(gens) != 5 {
		t.Fatalf("extended generator count = %d", len(gens))
	}
	seen := map[string]bool{}
	for _, g := range gens {
		if seen[g.Name()] {
			t.Fatalf("duplicate generator name %s", g.Name())
		}
		seen[g.Name()] = true
	}
}
