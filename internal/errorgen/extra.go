package errorgen

import (
	"math/rand"
	"sort"
	"strings"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
)

// Additional error types beyond the paper's evaluation set, following its
// future-work direction of "investigating the effects of more error
// types". They are used by the generalization-matrix experiment, which
// measures how well a predictor trained on the four standard known errors
// copes with each of these individually.

// CaseShift changes the letter case of categorical values ("eng" ->
// "ENG"), a classic ingestion bug. Like typos, the corrupted token falls
// out of the one-hot vocabulary.
type CaseShift struct{}

// Name implements Generator.
func (CaseShift) Name() string { return "case_shift" }

// Corrupt implements Generator.
func (CaseShift) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	for _, name := range pickColumns(out.Frame.NamesOfKind(frame.Categorical), rng) {
		col := out.Frame.Column(name)
		upper := rng.Intn(2) == 0
		for i, v := range col.Str {
			if v == "" || rng.Float64() >= p {
				continue
			}
			if upper {
				col.Str[i] = strings.ToUpper(v)
			} else {
				col.Str[i] = titleCase(v)
			}
		}
	}
	return out
}

// titleCase upper-cases the first letter of each space-separated word.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}

// NullTokens replaces categorical values with literal placeholder strings
// ("null", "N/A", "none") that a sloppy upstream system emitted instead
// of proper missing markers.
type NullTokens struct{}

// Name implements Generator.
func (NullTokens) Name() string { return "null_tokens" }

var nullLiterals = []string{"null", "N/A", "none", "undefined"}

// Corrupt implements Generator.
func (NullTokens) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	for _, name := range pickColumns(out.Frame.NamesOfKind(frame.Categorical), rng) {
		col := out.Frame.Column(name)
		for i, v := range col.Str {
			if v != "" && rng.Float64() < p {
				col.Str[i] = nullLiterals[rng.Intn(len(nullLiterals))]
			}
		}
	}
	return out
}

// DuplicateRows oversamples a fraction of rows, replacing other rows with
// copies — a join or retry bug that skews the serving distribution
// without corrupting any single cell.
type DuplicateRows struct{}

// Name implements Generator.
func (DuplicateRows) Name() string { return "duplicate_rows" }

// Corrupt implements Generator.
func (d DuplicateRows) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	p := clampMagnitude(magnitude)
	n := ds.Len()
	if n == 0 {
		return ds.Clone()
	}
	// Duplicate a small pool of source rows over a fraction p of slots.
	poolSize := n/20 + 1
	pool := rng.Perm(n)[:poolSize]
	idx := make([]int, n)
	for i := range idx {
		if rng.Float64() < p {
			idx[i] = pool[rng.Intn(poolSize)]
		} else {
			idx[i] = i
		}
	}
	return ds.SelectRows(idx)
}

// ClippedValues saturates numeric values above a column percentile, like
// a sensor or a downstream type with limited range.
type ClippedValues struct{}

// Name implements Generator.
func (ClippedValues) Name() string { return "clipped" }

// Corrupt implements Generator.
func (ClippedValues) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	for _, name := range pickColumns(out.Frame.NamesOfKind(frame.Numeric), rng) {
		col := out.Frame.Column(name)
		cap := columnPercentile(col.Num, 1-p/2) // stronger magnitude = lower cap
		for i, v := range col.Num {
			if v > cap {
				col.Num[i] = cap
			}
		}
	}
	return out
}

// columnPercentile returns the q-quantile (0..1) of the non-missing
// values, or 0 if none exist.
func columnPercentile(xs []float64, q float64) float64 {
	vals := make([]float64, 0, len(xs))
	for _, v := range xs {
		if v == v { // skip NaN
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	idx := int(q * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// ShuffledColumn permutes a fraction of the values within one numeric
// column, destroying the row alignment between that feature and the rest
// of the record while leaving the marginal distribution identical — a
// worst case for univariate raw-data drift detection (REL is blind to it
// by construction).
type ShuffledColumn struct{}

// Name implements Generator.
func (ShuffledColumn) Name() string { return "shuffled_column" }

// Corrupt implements Generator.
func (ShuffledColumn) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	nums := out.Frame.NamesOfKind(frame.Numeric)
	if len(nums) == 0 {
		return out
	}
	col := out.Frame.Column(nums[rng.Intn(len(nums))])
	var affected []int
	for i := range col.Num {
		if rng.Float64() < p {
			affected = append(affected, i)
		}
	}
	perm := rng.Perm(len(affected))
	shuffled := make([]float64, len(affected))
	for k, j := range perm {
		shuffled[k] = col.Num[affected[j]]
	}
	for k, i := range affected {
		col.Num[i] = shuffled[k]
	}
	return out
}

// ExtendedTabular returns the additional error types introduced by this
// reproduction (beyond the paper's evaluation set).
func ExtendedTabular() []Generator {
	return []Generator{CaseShift{}, NullTokens{}, DuplicateRows{}, ClippedValues{}, ShuffledColumn{}}
}
