package errorgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blackboxval/internal/datagen"
	"blackboxval/internal/frame"
)

// Property-based invariants that must hold for every cell-level tabular
// generator at any magnitude and seed.

func cellGenerators() []Generator {
	return []Generator{
		MissingValues{}, MissingValues{Numeric: true}, Outliers{}, Scaling{},
		Typos{}, Smearing{}, FlippedSigns{}, EncodingErrors{},
		CaseShift{}, NullTokens{}, ClippedValues{},
	}
}

func TestPropertyShapePreserved(t *testing.T) {
	f := func(seed int64, magRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		magnitude := float64(magRaw) / 255
		ds := datagen.Income(120, seed)
		for _, g := range cellGenerators() {
			out := g.Corrupt(ds, magnitude, rng)
			if out.Len() != ds.Len() {
				return false
			}
			if out.Frame.NumCols() != ds.Frame.NumCols() {
				return false
			}
			for i, name := range ds.Frame.ColumnNames() {
				if out.Frame.ColumnNames()[i] != name {
					return false
				}
				if out.Frame.Column(name).Kind != ds.Frame.Column(name).Kind {
					return false
				}
			}
			// Labels are never touched by data corruption.
			for i := range ds.Labels {
				if out.Labels[i] != ds.Labels[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMagnitudeMonotone(t *testing.T) {
	// Statistically, a higher magnitude must corrupt at least as many
	// cells (averaged over repetitions to tame randomness).
	ds := datagen.Income(400, 7)
	for _, g := range []Generator{MissingValues{}, Scaling{}, Typos{}, FlippedSigns{}} {
		count := func(magnitude float64) int {
			total := 0
			for rep := 0; rep < 5; rep++ {
				rng := rand.New(rand.NewSource(int64(rep)))
				out := g.Corrupt(ds, magnitude, rng)
				total += corruptedCells(ds, out)
			}
			return total
		}
		low, high := count(0.1), count(0.9)
		if high <= low {
			t.Fatalf("%s: magnitude 0.9 corrupted %d cells, 0.1 corrupted %d", g.Name(), high, low)
		}
	}
}

func TestPropertyMagnitudeClamped(t *testing.T) {
	// Out-of-range magnitudes behave like their clamped values rather
	// than panicking or corrupting labels.
	ds := datagen.Income(80, 9)
	rng := rand.New(rand.NewSource(9))
	for _, g := range cellGenerators() {
		if out := g.Corrupt(ds, -3, rng); out.Len() != ds.Len() {
			t.Fatalf("%s: negative magnitude broke shape", g.Name())
		}
		if out := g.Corrupt(ds, 7, rng); out.Len() != ds.Len() {
			t.Fatalf("%s: huge magnitude broke shape", g.Name())
		}
	}
}

func TestPropertyMissingOnlyAddsMissing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := datagen.Income(100, seed)
		out := MissingValues{}.Corrupt(ds, 0.5, rng)
		for _, name := range ds.Frame.NamesOfKind(frame.Categorical) {
			orig := ds.Frame.Column(name)
			corr := out.Frame.Column(name)
			for i := 0; i < orig.Len(); i++ {
				// Either unchanged or newly missing — never a new value.
				if corr.Str[i] != orig.Str[i] && corr.Str[i] != "" {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCorruptIncomeBatch(b *testing.B) {
	ds := datagen.Income(1000, 1)
	mix := Mixture{Generators: KnownTabular()}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mix.Corrupt(ds, 0.5, rng)
	}
}

func BenchmarkRotateImageBatch(b *testing.B) {
	ds := datagen.Digits(100, 1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ImageRotation{}.Corrupt(ds, 1.0, rng)
	}
}
