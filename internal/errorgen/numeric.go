package errorgen

import (
	"math/rand"
	"sort"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
	"blackboxval/internal/linalg"
)

// Smearing changes a random proportion of the values of a numeric
// attribute by a randomly chosen relative amount between -10% and +10%.
// One of the paper's "unknown" error types: its effect resembles mild
// gaussian noise, which lets a predictor trained on Outliers generalize.
type Smearing struct{}

// Name implements Generator.
func (Smearing) Name() string { return "smearing" }

// Corrupt implements Generator.
func (Smearing) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	for _, name := range pickColumns(out.Frame.NamesOfKind(frame.Numeric), rng) {
		col := out.Frame.Column(name)
		for i, v := range col.Num {
			if rng.Float64() < p {
				col.Num[i] = v * (1 + (rng.Float64()*0.2 - 0.1))
			}
		}
	}
	return out
}

// FlippedSigns multiplies a random proportion of the values of a numeric
// attribute by -1. One of the paper's "unknown" error types.
type FlippedSigns struct{}

// Name implements Generator.
func (FlippedSigns) Name() string { return "flipped_sign" }

// Corrupt implements Generator.
func (FlippedSigns) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	for _, name := range pickColumns(out.Frame.NamesOfKind(frame.Numeric), rng) {
		col := out.Frame.Column(name)
		for i, v := range col.Num {
			if rng.Float64() < p {
				col.Num[i] = -v
			}
		}
	}
	return out
}

// EntropyMissing is the paper's active-learning-inspired variant of
// missing values: examples are ranked by the black box model's prediction
// uncertainty 1-p_max, and values are discarded from the *easiest*
// (most certain) examples first, which is far harder to detect from the
// output distribution than uniformly random missingness.
type EntropyMissing struct {
	// Model supplies the uncertainty ranking. Required.
	Model data.Model
}

// Name implements Generator.
func (EntropyMissing) Name() string { return "entropy_missing" }

// Corrupt implements Generator.
func (e EntropyMissing) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	n := out.Len()
	if n == 0 {
		return out
	}
	proba := e.Model.PredictProba(ds)
	uncertainty := make([]float64, n)
	for i := 0; i < n; i++ {
		row := proba.Row(i)
		uncertainty[i] = 1 - row[linalg.ArgmaxRow(row)]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Easiest (lowest uncertainty) first.
	sort.Slice(order, func(a, b int) bool { return uncertainty[order[a]] < uncertainty[order[b]] })
	affected := order[:int(p*float64(n))]

	cols := out.Frame.NamesOfKind(frame.Categorical)
	cols = append(cols, out.Frame.NamesOfKind(frame.Numeric)...)
	picked := pickColumns(cols, rng)
	for _, name := range picked {
		col := out.Frame.Column(name)
		for _, i := range affected {
			frame.SetMissing(col, i)
		}
	}
	return out
}
