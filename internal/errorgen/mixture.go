package errorgen

import (
	"math/rand"
	"strings"

	"blackboxval/internal/data"
)

// NoOp leaves the data untouched. The absence of errors (perr = 0) is an
// explicit part of the problem statement, and predictors are trained with
// clean batches as well so they learn what "no drop" looks like.
type NoOp struct{}

// Name implements Generator.
func (NoOp) Name() string { return "none" }

// Corrupt implements Generator.
func (NoOp) Corrupt(ds *data.Dataset, _ float64, _ *rand.Rand) *data.Dataset {
	return ds.Clone()
}

// Mixture applies a randomly weighted blend of error generators: each
// component hits the data with its own random magnitude bounded by the
// mixture's overall magnitude. This reproduces the "randomly chosen
// mixtures of error types (with different probabilities)" protocol of the
// paper's validation experiments.
type Mixture struct {
	Generators []Generator
	// MinActive is the minimum number of component generators applied
	// (default 1).
	MinActive int
}

// Name implements Generator.
func (m Mixture) Name() string {
	names := make([]string, len(m.Generators))
	for i, g := range m.Generators {
		names[i] = g.Name()
	}
	return "mix(" + strings.Join(names, "+") + ")"
}

// Corrupt implements Generator.
func (m Mixture) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	minActive := m.MinActive
	if minActive <= 0 {
		minActive = 1
	}
	active := 0
	order := rng.Perm(len(m.Generators))
	for k, j := range order {
		remaining := len(m.Generators) - k
		mustApply := active+remaining <= minActive
		if !mustApply && rng.Float64() > 0.7 {
			continue
		}
		g := m.Generators[j]
		out = g.Corrupt(out, rng.Float64()*clampMagnitude(magnitude), rng)
		active++
	}
	return out
}

// KnownTabular returns the paper's four standard "known" error types for
// relational data: missing values, outliers, swapped columns and scaling.
func KnownTabular() []Generator {
	return []Generator{MissingValues{}, Outliers{}, SwappedColumns{}, Scaling{}}
}

// UnknownTabular returns the paper's three held-out "unknown" error types
// used to evaluate generalization: typos, smearing and flipped signs.
func UnknownTabular() []Generator {
	return []Generator{Typos{}, Smearing{}, FlippedSigns{}}
}

// Image returns the error types for image data: noise and rotation.
func Image() []Generator {
	return []Generator{ImageNoise{}, ImageRotation{}}
}
