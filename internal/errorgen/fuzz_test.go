package errorgen

import (
	"math/rand"
	"testing"
	"unicode/utf8"
)

// FuzzLeetspeak: the adversarial rewriter must never panic and must
// preserve UTF-8 validity and word count.
func FuzzLeetspeak(f *testing.F) {
	f.Add("hello world")
	f.Add("")
	f.Add("ümlauts und ĉirkumfleksoj")
	f.Add("already 1337")
	f.Fuzz(func(t *testing.T, input string) {
		if !utf8.ValidString(input) {
			t.Skip()
		}
		out := Leetspeak(input)
		if !utf8.ValidString(out) {
			t.Fatalf("invalid UTF-8 from %q: %q", input, out)
		}
		if len(out) < len(input) {
			// replacements are same-width or wider (all 1-byte ASCII)
			t.Fatalf("leetspeak shrank %q to %q", input, out)
		}
	})
}

// FuzzIntroduceTypo: character-level edits must never panic or return an
// empty string for non-empty input.
func FuzzIntroduceTypo(f *testing.F) {
	f.Add("category", int64(1))
	f.Add("x", int64(2))
	f.Add("", int64(3))
	f.Add("多字节字符", int64(4))
	f.Fuzz(func(t *testing.T, input string, seed int64) {
		if !utf8.ValidString(input) {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		out := introduceTypo(input, rng)
		if input != "" && out == "" {
			t.Fatalf("typo erased %q entirely", input)
		}
		if !utf8.ValidString(out) {
			t.Fatalf("invalid UTF-8 from %q: %q", input, out)
		}
	})
}
