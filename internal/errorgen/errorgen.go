// Package errorgen implements the paper's user-specified error generators:
// parameterized perturbations that inject typical dataset shifts and data
// errors into serving data (Section 2, "Perturbations"). Each generator
// corrupts a copy of a dataset with a given magnitude (the fraction of
// affected cells/rows); the magnitudes are sampled randomly during
// predictor training because the real-world error probabilities are
// unknown.
//
// Known error types used to train predictors: MissingValues, Outliers,
// SwappedColumns, Scaling, AdversarialText, ImageNoise, ImageRotation and
// EntropyMissing. Held-out "unknown" error types used only at evaluation
// time: Typos, Smearing, FlippedSigns and EncodingErrors.
package errorgen

import (
	"math"
	"math/rand"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
)

// Generator corrupts datasets with a specific error type. Implementations
// must not modify the input dataset; they corrupt a deep copy.
type Generator interface {
	// Name identifies the error type.
	Name() string
	// Corrupt returns a corrupted copy of ds. magnitude in [0,1] is the
	// fraction of affected cells (or rows, for row-level errors); rng
	// drives all random choices, including which columns are hit.
	Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset
}

// pickColumns selects 1..len(names) random column names, as the paper
// corrupts "1 to n randomly chosen columns".
func pickColumns(names []string, rng *rand.Rand) []string {
	if len(names) == 0 {
		return nil
	}
	k := 1 + rng.Intn(len(names))
	idx := rng.Perm(len(names))[:k]
	out := make([]string, k)
	for i, j := range idx {
		out[i] = names[j]
	}
	return out
}

// clampMagnitude keeps p in [0,1].
func clampMagnitude(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// MissingValues introduces missing cells at random into 1..n categorical
// columns (or, with Numeric set, numeric columns).
type MissingValues struct {
	// Numeric corrupts numeric instead of categorical columns.
	Numeric bool
}

// Name implements Generator.
func (m MissingValues) Name() string {
	if m.Numeric {
		return "missing_numeric"
	}
	return "missing"
}

// Corrupt implements Generator.
func (m MissingValues) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	kind := frame.Categorical
	if m.Numeric {
		kind = frame.Numeric
	}
	for _, name := range pickColumns(out.Frame.NamesOfKind(kind), rng) {
		col := out.Frame.Column(name)
		for i := 0; i < col.Len(); i++ {
			if rng.Float64() < p {
				frame.SetMissing(col, i)
			}
		}
	}
	return out
}

// Outliers corrupts a fraction of values in 1..n numeric columns by
// adding gaussian noise centered at the data point, with a standard
// deviation scaled by a random factor from [2,5] of the column's own
// standard deviation — the paper's outlier perturbation.
type Outliers struct{}

// Name implements Generator.
func (Outliers) Name() string { return "outliers" }

// Corrupt implements Generator.
func (Outliers) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	for _, name := range pickColumns(out.Frame.NamesOfKind(frame.Numeric), rng) {
		col := out.Frame.Column(name)
		sd := columnStd(col.Num)
		scale := 2 + rng.Float64()*3
		for i, v := range col.Num {
			if rng.Float64() < p {
				col.Num[i] = v + rng.NormFloat64()*sd*scale
			}
		}
	}
	return out
}

func columnStd(xs []float64) float64 {
	n := 0
	sum := 0.0
	for _, v := range xs {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n < 2 {
		return 1
	}
	mean := sum / float64(n)
	ss := 0.0
	for _, v := range xs {
		if !math.IsNaN(v) {
			d := v - mean
			ss += d * d
		}
	}
	sd := math.Sqrt(ss / float64(n))
	if sd <= 0 {
		return 1
	}
	return sd
}

// Scaling multiplies a fraction of the values in 1..n numeric columns by
// a random factor of 10, 100 or 1000, mimicking unit-change bugs in
// preprocessing code (e.g. seconds accidentally becoming milliseconds).
type Scaling struct{}

// Name implements Generator.
func (Scaling) Name() string { return "scaling" }

// Corrupt implements Generator.
func (Scaling) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	factors := []float64{10, 100, 1000}
	for _, name := range pickColumns(out.Frame.NamesOfKind(frame.Numeric), rng) {
		col := out.Frame.Column(name)
		factor := factors[rng.Intn(len(factors))]
		for i, v := range col.Num {
			if rng.Float64() < p {
				col.Num[i] = v * factor
			}
		}
	}
	return out
}

// SwappedColumns exchanges a fraction of the values between pairs of
// same-kind columns, and simulates categorical/numeric cross-swaps (as
// caused by buggy input forms) by voiding the numeric cell and replacing
// the categorical cell with an out-of-vocabulary token.
type SwappedColumns struct{}

// Name implements Generator.
func (SwappedColumns) Name() string { return "swapped" }

// Corrupt implements Generator.
func (SwappedColumns) Corrupt(ds *data.Dataset, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	p := clampMagnitude(magnitude)
	nums := out.Frame.NamesOfKind(frame.Numeric)
	cats := out.Frame.NamesOfKind(frame.Categorical)

	swapNumeric := func(a, b *frame.Column) {
		for i := range a.Num {
			if rng.Float64() < p {
				a.Num[i], b.Num[i] = b.Num[i], a.Num[i]
			}
		}
	}
	swapString := func(a, b *frame.Column) {
		for i := range a.Str {
			if rng.Float64() < p {
				a.Str[i], b.Str[i] = b.Str[i], a.Str[i]
			}
		}
	}
	crossSwap := func(num, cat *frame.Column) {
		for i := range num.Num {
			if rng.Float64() < p {
				// The numeric column receives an unparseable string -> NA;
				// the categorical column receives a stringified number,
				// which the one-hot encoder maps to a zero vector.
				frame.SetMissing(num, i)
				cat.Str[i] = "__swapped__"
			}
		}
	}

	// Perform one same-kind swap where possible, plus a cross-kind swap,
	// mirroring the paper's "pairs of categorical and numerical columns".
	if len(nums) >= 2 {
		idx := rng.Perm(len(nums))
		swapNumeric(out.Frame.Column(nums[idx[0]]), out.Frame.Column(nums[idx[1]]))
	}
	if len(cats) >= 2 {
		idx := rng.Perm(len(cats))
		swapString(out.Frame.Column(cats[idx[0]]), out.Frame.Column(cats[idx[1]]))
	}
	if len(nums) >= 1 && len(cats) >= 1 && rng.Float64() < 0.5 {
		crossSwap(out.Frame.Column(nums[rng.Intn(len(nums))]), out.Frame.Column(cats[rng.Intn(len(cats))]))
	}
	return out
}
