package datagen

import (
	"math"
	"strings"
	"testing"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
)

func checkTabular(t *testing.T, d *data.Dataset, n int, numericCols, categoricalCols int) {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != n {
		t.Fatalf("len = %d, want %d", d.Len(), n)
	}
	if got := len(d.Frame.NamesOfKind(frame.Numeric)); got != numericCols {
		t.Fatalf("numeric cols = %d, want %d", got, numericCols)
	}
	if got := len(d.Frame.NamesOfKind(frame.Categorical)); got != categoricalCols {
		t.Fatalf("categorical cols = %d, want %d", got, categoricalCols)
	}
	counts := d.ClassCounts()
	for c, cnt := range counts {
		if cnt < n/4 {
			t.Fatalf("class %d badly imbalanced: %v", c, counts)
		}
	}
}

func TestIncomeShape(t *testing.T) { checkTabular(t, Income(500, 1), 500, 4, 3) }
func TestHeartShape(t *testing.T)  { checkTabular(t, Heart(500, 1), 500, 5, 3) }
func TestBankShape(t *testing.T)   { checkTabular(t, Bank(500, 1), 500, 4, 4) }

func TestProductsShapeAndClasses(t *testing.T) {
	d := Products(600, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(d.Classes))
	}
	counts := d.ClassCounts()
	for c, cnt := range counts {
		if cnt < 100 {
			t.Fatalf("class %d badly imbalanced: %v", c, counts)
		}
	}
	// Class-conditional price signal must exist.
	var sum [3]float64
	var n [3]int
	for i, v := range d.Frame.Column("price").Num {
		sum[d.Labels[i]] += v
		n[d.Labels[i]]++
	}
	if sum[0]/float64(n[0]) <= sum[2]/float64(n[2]) {
		t.Fatal("low sellers should be pricier than high sellers")
	}
}

func TestTweetsShape(t *testing.T) {
	d := Tweets(300, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Frame.NamesOfKind(frame.Text)); got != 1 {
		t.Fatalf("text cols = %d", got)
	}
	for _, txt := range d.Frame.Column("text").Str {
		if len(strings.Fields(txt)) < 3 {
			t.Fatalf("suspiciously short tweet: %q", txt)
		}
	}
}

func TestTweetsClassSignal(t *testing.T) {
	d := Tweets(2000, 2)
	trollHits := map[int]int{}
	totals := map[int]int{}
	trollSet := map[string]bool{}
	for _, w := range trollVocab {
		trollSet[w] = true
	}
	for i, txt := range d.Frame.Column("text").Str {
		y := d.Labels[i]
		totals[y]++
		for _, w := range strings.Fields(txt) {
			if trollSet[w] {
				trollHits[y]++
				break
			}
		}
	}
	trollRate := float64(trollHits[1]) / float64(totals[1])
	neutralRate := float64(trollHits[0]) / float64(totals[0])
	if trollRate-neutralRate < 0.15 {
		t.Fatalf("troll vocabulary signal too weak: troll=%v neutral=%v", trollRate, neutralRate)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Income(100, 42)
	b := Income(100, 42)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ for same seed")
		}
	}
	av := a.Frame.Column("age").Num
	bv := b.Frame.Column("age").Num
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("values differ for same seed")
		}
	}
	c := Income(100, 43)
	same := true
	for i := range av {
		if av[i] != c.Frame.Column("age").Num[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTabularClassConditionalSignal(t *testing.T) {
	// Feature means must differ between classes, otherwise no model can
	// learn anything and every experiment would be vacuous.
	for name, gen := range map[string]func(int, int64) *data.Dataset{
		"income": Income, "heart": Heart, "bank": Bank,
	} {
		d := gen(4000, 7)
		col := d.Frame.NamesOfKind(frame.Numeric)[0]
		var sum [2]float64
		var cnt [2]int
		for i, v := range d.Frame.Column(col).Num {
			sum[d.Labels[i]] += v
			cnt[d.Labels[i]]++
		}
		diff := math.Abs(sum[0]/float64(cnt[0]) - sum[1]/float64(cnt[1]))
		if diff < 1 {
			t.Fatalf("%s: class-conditional mean difference too small: %v", name, diff)
		}
	}
}

func TestDigitsShape(t *testing.T) {
	d := Digits(100, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Images.Width != 28 || d.Images.Height != 28 {
		t.Fatalf("image size = %dx%d", d.Images.Width, d.Images.Height)
	}
	for i := range d.Images.Pixels {
		for _, v := range d.Images.Pixels[i] {
			if v < 0 || v > 1 {
				t.Fatalf("pixel out of range: %v", v)
			}
		}
		if d.Images.Mean(i) < 0.01 {
			t.Fatalf("image %d nearly empty", i)
		}
	}
}

func TestFashionClassesDiffer(t *testing.T) {
	d := Fashion(400, 3)
	// Boots have a tall shaft: mass in the upper half should differ
	// systematically between classes.
	var upper [2]float64
	var cnt [2]int
	for i := range d.Images.Pixels {
		sum := 0.0
		for y := 0; y < 14; y++ {
			for x := 0; x < 28; x++ {
				sum += d.Images.At(i, x, y)
			}
		}
		upper[d.Labels[i]] += sum
		cnt[d.Labels[i]]++
	}
	sneaker := upper[0] / float64(cnt[0])
	boot := upper[1] / float64(cnt[1])
	if boot < sneaker*1.5 {
		t.Fatalf("boot upper mass %v not clearly above sneaker %v", boot, sneaker)
	}
}

func TestDigitsClassesDiffer(t *testing.T) {
	d := Digits(400, 3)
	// A "5" has a top bar plus upper-left vertical; a "3" has arcs opening
	// left. Compare mass in the top-left quadrant.
	var topLeft [2]float64
	var cnt [2]int
	for i := range d.Images.Pixels {
		sum := 0.0
		for y := 4; y < 14; y++ {
			for x := 4; x < 12; x++ {
				sum += d.Images.At(i, x, y)
			}
		}
		topLeft[d.Labels[i]] += sum
		cnt[d.Labels[i]]++
	}
	three := topLeft[0] / float64(cnt[0])
	five := topLeft[1] / float64(cnt[1])
	if five < three*1.2 {
		t.Fatalf("digit classes not separable by top-left mass: 3=%v 5=%v", three, five)
	}
}
