package datagen

import (
	"math/rand"
	"strings"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
)

// Vocabularies for the synthetic cyber-troll dataset. Troll tweets draw a
// larger share of their tokens from the insult vocabulary; neutral tweets
// from the benign one. Both share filler words so the classes overlap.
var (
	trollVocab = []string{
		"idiot", "loser", "stupid", "pathetic", "clown", "trash", "moron",
		"dumb", "worthless", "fool", "shut", "hate", "ugly", "garbage",
		"ridiculous", "joke", "cry", "failure", "annoying", "weak",
	}
	benignVocab = []string{
		"great", "thanks", "love", "awesome", "happy", "weekend", "coffee",
		"music", "friends", "sunshine", "weather", "movie", "dinner",
		"project", "learning", "running", "travel", "beautiful", "excited",
		"congrats",
	}
	fillerVocab = []string{
		"the", "a", "you", "today", "just", "really", "so", "this", "that",
		"my", "your", "all", "very", "what", "now", "here", "about", "and",
	}
)

// Tweets generates a cyber-troll-like text dataset: one free-text column
// of short messages, labeled troll vs. neutral.
func Tweets(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int, n)
	texts := make([]string, n)
	for i := 0; i < n; i++ {
		y := rng.Intn(2)
		labels[i] = y
		texts[i] = synthTweet(y, rng)
	}
	flipLabels(labels, 2, 0.06, rng)
	f := frame.New().AddText("text", texts)
	return &data.Dataset{Frame: f, Labels: labels, Classes: []string{"neutral", "troll"}}
}

func synthTweet(class int, rng *rand.Rand) string {
	length := 5 + rng.Intn(10)
	words := make([]string, 0, length)
	for w := 0; w < length; w++ {
		r := rng.Float64()
		switch {
		case r < 0.45:
			words = append(words, fillerVocab[rng.Intn(len(fillerVocab))])
		case r < 0.92:
			// class-signal token
			if class == 1 {
				words = append(words, trollVocab[rng.Intn(len(trollVocab))])
			} else {
				words = append(words, benignVocab[rng.Intn(len(benignVocab))])
			}
		default:
			// cross-class token: overlap keeps the task non-trivial
			if class == 1 {
				words = append(words, benignVocab[rng.Intn(len(benignVocab))])
			} else {
				words = append(words, trollVocab[rng.Intn(len(trollVocab))])
			}
		}
	}
	return strings.Join(words, " ")
}
