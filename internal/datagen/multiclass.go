package datagen

import (
	"math"
	"math/rand"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
)

// Products generates a three-class e-commerce-like dataset (the sales
// prediction scenario of the paper's introduction): predict whether a
// competitor product will sell "low", "medium" or "high". It exercises
// the multiclass paths of the models and of the percentile featurizer
// (which emits one percentile block per class).
func Products(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	brand := categorical{
		names: []string{"acme", "globex", "initech", "umbrella"},
		weights: [][]float64{
			{4, 3, 2, 1}, // low sellers
			{2, 4, 3, 1}, // medium
			{1, 2, 4, 3}, // high
		},
	}
	channel := categorical{
		names: []string{"web", "store", "partner"},
		weights: [][]float64{
			{3, 5, 2},
			{5, 3, 2},
			{6, 2, 2},
		},
	}

	labels := make([]int, n)
	price := make([]float64, n)
	rating := make([]float64, n)
	reviews := make([]float64, n)
	stock := make([]float64, n)
	br := make([]string, n)
	ch := make([]string, n)
	for i := 0; i < n; i++ {
		y := rng.Intn(3)
		labels[i] = y
		price[i] = math.Max(1, 60-15*float64(y)+rng.NormFloat64()*18)
		rating[i] = math.Min(5, math.Max(1, 2.8+0.6*float64(y)+rng.NormFloat64()*0.7))
		reviews[i] = math.Max(0, math.Round(20+90*float64(y)+rng.NormFloat64()*45))
		stock[i] = math.Max(0, 120+60*float64(y)+rng.NormFloat64()*80)
		br[i] = brand.sample(y, rng)
		ch[i] = channel.sample(y, rng)
	}
	flipLabels(labels, 3, 0.08, rng)

	f := frame.New().
		AddNumeric("price", price).
		AddNumeric("rating", rating).
		AddNumeric("review_count", reviews).
		AddNumeric("stock", stock).
		AddCategorical("brand", br).
		AddCategorical("channel", ch)
	return &data.Dataset{Frame: f, Labels: labels, Classes: []string{"low", "medium", "high"}}
}
