// Package datagen generates the six synthetic datasets used by the
// evaluation, substituting for the public datasets of the paper (adult
// income, cardiovascular heart, bank marketing, troll tweets, MNIST 3-vs-5
// and fashion sneaker-vs-boot), which are not available offline. Each
// generator produces the same schema shape as its original: a mix of
// numeric and categorical columns (or text, or 28x28 grayscale images)
// whose distributions are class-conditional with realistic overlap, plus
// label noise, so that the black box models reach non-trivial but
// imperfect accuracy and data corruptions degrade it — the properties the
// performance prediction method actually depends on.
package datagen

import (
	"math"
	"math/rand"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
)

// categorical draws a value from names with class-conditional weights.
type categorical struct {
	names   []string
	weights [][]float64 // weights[class][value]
}

func (c categorical) sample(class int, rng *rand.Rand) string {
	w := c.weights[class]
	total := 0.0
	for _, v := range w {
		total += v
	}
	r := rng.Float64() * total
	for i, v := range w {
		r -= v
		if r < 0 {
			return c.names[i]
		}
	}
	return c.names[len(c.names)-1]
}

// flipLabels flips each label with probability p, simulating Bayes error.
func flipLabels(labels []int, numClasses int, p float64, rng *rand.Rand) {
	for i := range labels {
		if rng.Float64() < p {
			labels[i] = (labels[i] + 1 + rng.Intn(numClasses-1)) % numClasses
		}
	}
}

// Income generates an adult-census-like dataset: predict whether a person
// earns more than 50K. Numeric: age, hours_per_week, capital_gain,
// education_years. Categorical: occupation, marital_status, sex.
func Income(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	occupation := categorical{
		names: []string{"exec", "tech", "service", "manual", "clerical"},
		weights: [][]float64{
			{1, 2, 4, 5, 4}, // <=50K
			{5, 4, 1, 1, 2}, // >50K
		},
	}
	marital := categorical{
		names: []string{"married", "single", "divorced"},
		weights: [][]float64{
			{3, 5, 2},
			{6, 2, 1},
		},
	}
	sex := categorical{
		names:   []string{"male", "female"},
		weights: [][]float64{{5, 5}, {6, 4}},
	}

	labels := make([]int, n)
	age := make([]float64, n)
	hours := make([]float64, n)
	gain := make([]float64, n)
	edu := make([]float64, n)
	occ := make([]string, n)
	mar := make([]string, n)
	sx := make([]string, n)
	for i := 0; i < n; i++ {
		y := rng.Intn(2)
		labels[i] = y
		age[i] = math.Max(17, 36+8*float64(y)+rng.NormFloat64()*12)
		hours[i] = math.Max(5, 38+6*float64(y)+rng.NormFloat64()*10)
		if rng.Float64() < 0.1+0.25*float64(y) {
			gain[i] = math.Abs(rng.NormFloat64()) * 5000 * (1 + 2*float64(y))
		}
		edu[i] = math.Max(6, math.Min(20, 10+3*float64(y)+rng.NormFloat64()*2.5))
		occ[i] = occupation.sample(y, rng)
		mar[i] = marital.sample(y, rng)
		sx[i] = sex.sample(y, rng)
	}
	flipLabels(labels, 2, 0.08, rng)

	f := frame.New().
		AddNumeric("age", age).
		AddNumeric("hours_per_week", hours).
		AddNumeric("capital_gain", gain).
		AddNumeric("education_years", edu).
		AddCategorical("occupation", occ).
		AddCategorical("marital_status", mar).
		AddCategorical("sex", sx)
	return &data.Dataset{Frame: f, Labels: labels, Classes: []string{"<=50K", ">50K"}}
}

// Heart generates a cardiovascular-disease-like dataset: predict the
// presence of heart disease. Numeric: age, weight, ap_hi (systolic),
// ap_lo (diastolic), cholesterol_level. Categorical: smoker, active,
// glucose.
func Heart(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	smoker := categorical{
		names:   []string{"no", "yes"},
		weights: [][]float64{{8, 2}, {6, 4}},
	}
	active := categorical{
		names:   []string{"yes", "no"},
		weights: [][]float64{{8, 2}, {5, 5}},
	}
	glucose := categorical{
		names:   []string{"normal", "above", "high"},
		weights: [][]float64{{8, 1.5, 0.5}, {5, 3, 2}},
	}

	labels := make([]int, n)
	age := make([]float64, n)
	weight := make([]float64, n)
	apHi := make([]float64, n)
	apLo := make([]float64, n)
	chol := make([]float64, n)
	smo := make([]string, n)
	act := make([]string, n)
	glu := make([]string, n)
	for i := 0; i < n; i++ {
		y := rng.Intn(2)
		labels[i] = y
		age[i] = math.Max(30, 50+6*float64(y)+rng.NormFloat64()*8)
		weight[i] = math.Max(45, 72+9*float64(y)+rng.NormFloat64()*13)
		apHi[i] = math.Max(80, 120+18*float64(y)+rng.NormFloat64()*14)
		apLo[i] = math.Max(50, 78+10*float64(y)+rng.NormFloat64()*9)
		chol[i] = math.Max(120, 195+35*float64(y)+rng.NormFloat64()*35)
		smo[i] = smoker.sample(y, rng)
		act[i] = active.sample(y, rng)
		glu[i] = glucose.sample(y, rng)
	}
	flipLabels(labels, 2, 0.1, rng)

	f := frame.New().
		AddNumeric("age", age).
		AddNumeric("weight", weight).
		AddNumeric("ap_hi", apHi).
		AddNumeric("ap_lo", apLo).
		AddNumeric("cholesterol_level", chol).
		AddCategorical("smoker", smo).
		AddCategorical("active", act).
		AddCategorical("glucose", glu)
	return &data.Dataset{Frame: f, Labels: labels, Classes: []string{"healthy", "disease"}}
}

// Bank generates a bank-marketing-like dataset: predict whether a customer
// subscribes a term deposit. Numeric: age, balance, duration, campaign.
// Categorical: job, marital, education, contact.
func Bank(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	job := categorical{
		names: []string{"admin", "blue-collar", "management", "retired", "student"},
		weights: [][]float64{
			{3, 4, 2, 0.6, 0.4},
			{3, 2, 3, 1.2, 0.8},
		},
	}
	marital := categorical{
		names:   []string{"married", "single", "divorced"},
		weights: [][]float64{{6, 3, 1}, {5, 4, 1}},
	}
	education := categorical{
		names:   []string{"primary", "secondary", "tertiary"},
		weights: [][]float64{{2, 5, 3}, {1, 4, 5}},
	}
	contact := categorical{
		names:   []string{"cellular", "telephone", "unknown"},
		weights: [][]float64{{5, 2, 3}, {7, 2, 1}},
	}

	labels := make([]int, n)
	age := make([]float64, n)
	balance := make([]float64, n)
	duration := make([]float64, n)
	campaign := make([]float64, n)
	jb := make([]string, n)
	mar := make([]string, n)
	edu := make([]string, n)
	con := make([]string, n)
	for i := 0; i < n; i++ {
		y := rng.Intn(2)
		labels[i] = y
		age[i] = math.Max(18, 40+3*float64(y)+rng.NormFloat64()*11)
		balance[i] = 800 + 900*float64(y) + rng.NormFloat64()*1500
		duration[i] = math.Max(5, 180+240*float64(y)+rng.NormFloat64()*150)
		campaign[i] = math.Max(1, math.Round(3.2-1.4*float64(y)+math.Abs(rng.NormFloat64())*2))
		jb[i] = job.sample(y, rng)
		mar[i] = marital.sample(y, rng)
		edu[i] = education.sample(y, rng)
		con[i] = contact.sample(y, rng)
	}
	flipLabels(labels, 2, 0.09, rng)

	f := frame.New().
		AddNumeric("age", age).
		AddNumeric("balance", balance).
		AddNumeric("duration", duration).
		AddNumeric("campaign", campaign).
		AddCategorical("job", jb).
		AddCategorical("marital", mar).
		AddCategorical("education", edu).
		AddCategorical("contact", con)
	return &data.Dataset{Frame: f, Labels: labels, Classes: []string{"no", "yes"}}
}
