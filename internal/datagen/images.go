package datagen

import (
	"math"
	"math/rand"

	"blackboxval/internal/data"
	"blackboxval/internal/imgdata"
)

// imageSize is the side length of generated images, matching MNIST and
// Fashion-MNIST.
const imageSize = 28

// canvas is a scratch 28x28 grayscale image under construction.
type canvas struct {
	px []float64
}

func newCanvas() *canvas { return &canvas{px: make([]float64, imageSize*imageSize)} }

// stamp splats a soft dot of the given radius at (x, y).
func (c *canvas) stamp(x, y, radius, intensity float64) {
	r := int(math.Ceil(radius + 1))
	xi, yi := int(math.Round(x)), int(math.Round(y))
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			px, py := xi+dx, yi+dy
			if px < 0 || px >= imageSize || py < 0 || py >= imageSize {
				continue
			}
			d := math.Hypot(float64(px)-x, float64(py)-y)
			v := intensity * math.Exp(-d*d/(2*radius*radius))
			idx := py*imageSize + px
			if v > c.px[idx] {
				c.px[idx] = v
			}
		}
	}
}

// line draws a thick line from (x0,y0) to (x1,y1).
func (c *canvas) line(x0, y0, x1, y1, thickness float64) {
	steps := int(math.Hypot(x1-x0, y1-y0)*2) + 1
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		c.stamp(x0+(x1-x0)*t, y0+(y1-y0)*t, thickness, 1)
	}
}

// arc draws a circular arc centered at (cx,cy) from angle a0 to a1
// (radians, standard orientation with y growing downward).
func (c *canvas) arc(cx, cy, radius, a0, a1, thickness float64) {
	steps := int(math.Abs(a1-a0)*radius*2) + 1
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		a := a0 + (a1-a0)*t
		c.stamp(cx+radius*math.Cos(a), cy+radius*math.Sin(a), thickness, 1)
	}
}

// fillEllipse fills an axis-aligned ellipse.
func (c *canvas) fillEllipse(cx, cy, rx, ry, intensity float64) {
	for y := 0; y < imageSize; y++ {
		for x := 0; x < imageSize; x++ {
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			if dx*dx+dy*dy <= 1 {
				idx := y*imageSize + x
				if intensity > c.px[idx] {
					c.px[idx] = intensity
				}
			}
		}
	}
}

// finish applies jitter (translation), mild pixel noise and clamping, and
// returns the pixel vector.
func (c *canvas) finish(rng *rand.Rand) []float64 {
	dx := rng.Intn(5) - 2
	dy := rng.Intn(5) - 2
	out := make([]float64, len(c.px))
	for y := 0; y < imageSize; y++ {
		for x := 0; x < imageSize; x++ {
			sx, sy := x-dx, y-dy
			if sx < 0 || sx >= imageSize || sy < 0 || sy >= imageSize {
				continue
			}
			out[y*imageSize+x] = c.px[sy*imageSize+sx]
		}
	}
	for i := range out {
		out[i] = imgdata.Clamp(out[i] + rng.NormFloat64()*0.04)
	}
	return out
}

func drawThree(rng *rand.Rand) []float64 {
	c := newCanvas()
	th := 1.2 + rng.Float64()*0.6
	r := 4.5 + rng.Float64()
	// Two right-open arcs stacked vertically form a "3".
	c.arc(13, 9, r, -math.Pi*0.75, math.Pi*0.5, th)
	c.arc(13, 18.5, r, -math.Pi*0.5, math.Pi*0.75, th)
	return c.finish(rng)
}

func drawFive(rng *rand.Rand) []float64 {
	c := newCanvas()
	th := 1.2 + rng.Float64()*0.6
	// Top bar, upper-left vertical, lower bowl.
	c.line(9, 6, 19, 6, th)
	c.line(9, 6, 9, 13, th)
	c.arc(13, 17.5, 5, -math.Pi*0.55, math.Pi*0.8, th)
	return c.finish(rng)
}

// Digits generates an MNIST-like binary image dataset of handwritten-style
// digits 3 and 5.
func Digits(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	set := imgdata.NewSet(imageSize, imageSize)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		y := rng.Intn(2)
		labels[i] = y
		if y == 0 {
			set.Append(drawThree(rng))
		} else {
			set.Append(drawFive(rng))
		}
	}
	flipLabels(labels, 2, 0.02, rng)
	return &data.Dataset{Images: set, Labels: labels, Classes: []string{"3", "5"}}
}

func drawSneaker(rng *rand.Rand) []float64 {
	c := newCanvas()
	h := 0.5 + rng.Float64()*0.15
	// Low-profile body plus a flat sole.
	c.fillEllipse(14, 18, 9+rng.Float64(), 3.5+rng.Float64(), h)
	c.fillEllipse(19, 17, 4, 3, h*0.9)
	for x := 4; x < 24; x++ {
		for y := 21; y < 23; y++ {
			c.px[y*imageSize+x] = math.Min(1, h+0.3)
		}
	}
	return c.finish(rng)
}

func drawBoot(rng *rand.Rand) []float64 {
	c := newCanvas()
	h := 0.5 + rng.Float64()*0.15
	// Tall shaft on the left plus a foot section and heel.
	for x := 8; x < 15; x++ {
		for y := 5; y < 19; y++ {
			c.px[y*imageSize+x] = h
		}
	}
	c.fillEllipse(16, 18, 8+rng.Float64(), 3.5, h)
	for x := 6; x < 25; x++ {
		for y := 21; y < 24; y++ {
			c.px[y*imageSize+x] = math.Min(1, h+0.3)
		}
	}
	return c.finish(rng)
}

// Fashion generates a Fashion-MNIST-like binary image dataset of sneaker
// vs. ankle boot silhouettes.
func Fashion(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	set := imgdata.NewSet(imageSize, imageSize)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		y := rng.Intn(2)
		labels[i] = y
		if y == 0 {
			set.Append(drawSneaker(rng))
		} else {
			set.Append(drawBoot(rng))
		}
	}
	flipLabels(labels, 2, 0.03, rng)
	return &data.Dataset{Images: set, Labels: labels, Classes: []string{"sneaker", "ankle boot"}}
}
