// Command ppm-traffic drives demo and test workloads against the
// shadow-validation gateway, and doubles as the webhook receiver the
// alerting demo needs.
//
// Send mode replays a synthetic serving workload with an optional
// corruption ramp — leading clean batches, then a linearly growing
// error magnitude — so the drift timeline and alert rules have a
// deterministic scenario to react to:
//
//	ppm-traffic send -target http://127.0.0.1:8088 -dataset income \
//	    -batches 6 -rows 500 -corrupt scaling -max-magnitude 0.95
//
// With -label-lag N the sender also replays delayed ground truth:
// after batch i is served, the true labels of batch i-N are POSTed to
// the target's /labels endpoint (tail flushed at the end), closing the
// label-feedback loop the monitor's Bayesian assessment rides on.
// -label-budget B switches to active mode — only the rows the
// target's GET /labels/requests worklist asks for are labeled, B per
// due batch, under -label-policy ts|uniform. A ramp whose batches all
// fail exits non-zero; partial failures are logged and skipped.
//
// With -rate R the sender switches from the default closed loop
// (each batch waits for the previous response) to open-loop dispatch:
// batches launch at a fixed R per second on their own goroutines and
// latency is measured from each batch's intended start time, the
// coordinated-omission-free convention for load testing a serving
// SLO. Every run — either loop — ends with a latency summary line
// (p50/p99/max and the error count). -rate cannot be combined with
// label replay:
//
//	ppm-traffic send -target http://127.0.0.1:8088 -dataset income \
//	    -batches 120 -rows 100 -rate 40
//
// Sink mode runs a tiny webhook receiver; point -alert-webhook at it
// and poll GET /count (or /events) to see delivered alerts:
//
//	ppm-traffic sink -addr 127.0.0.1:8099
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"blackboxval/internal/cli"
	"blackboxval/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "send":
		err = runSend(os.Args[2:])
	case "sink":
		err = runSink(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppm-traffic:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ppm-traffic send -target URL [-targets URL,URL,...] [-dataset income] [-batches 6] [-rows 500]
               [-corrupt NAME] [-corrupt-column COL] [-max-magnitude 0.95]
               [-clean 2] [-interval 0s] [-rate BATCHES_PER_SEC] [-seed 1]
               [-label-lag N] [-label-budget N] [-label-policy ts|uniform]
               [-trace-sample RATE]
  ppm-traffic sink -addr HOST:PORT`)
}

func runSend(args []string) error {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	target := fs.String("target", "http://127.0.0.1:8088", "gateway base URL")
	targets := fs.String("targets", "", "comma-separated gateway base URLs; batch i goes to target i mod N (overrides -target)")
	dataset := fs.String("dataset", "income", "synthetic dataset (income, heart, bank, tweets)")
	batches := fs.Int("batches", 6, "serving batches to send")
	rows := fs.Int("rows", 500, "rows per batch")
	corrupt := fs.String("corrupt", "", "error generator for the ramp (empty = all clean)")
	column := fs.String("corrupt-column", "", "scale exactly this numeric column instead of the generator's random pick (attribution ground truth)")
	maxMagnitude := fs.Float64("max-magnitude", 0.95, "final corruption magnitude of the ramp")
	clean := fs.Int("clean", 2, "leading clean batches before the ramp")
	interval := fs.Duration("interval", 0, "pause between batches (closed loop)")
	rate := fs.Float64("rate", 0, "open-loop arrival rate in batches/sec (0 = closed loop); latency measured from intended start")
	seed := fs.Int64("seed", 1, "workload seed")
	traceSample := fs.Float64("trace-sample", 1, "deterministic head-sampling rate for the traceparent each batch carries; trace ids derive from -seed and the batch index (<=0 or >1 = sample everything)")
	labelLag := fs.Int("label-lag", -1, "replay true labels N batches behind the ramp (-1 = no label replay)")
	labelBudget := fs.Int("label-budget", 0, "budget mode: label only the rows GET /labels/requests asks for, N per due batch (0 = full batches)")
	labelPolicy := fs.String("label-policy", "ts", "budget-mode worklist policy: ts or uniform")
	fs.Parse(args)
	var targetList []string
	if *targets != "" {
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targetList = append(targetList, t)
			}
		}
	}
	opts := cli.TrafficOptions{
		Target: *target, Targets: targetList, Dataset: *dataset, Batches: *batches, Rows: *rows,
		Corrupt: *corrupt, Column: *column, MaxMagnitude: *maxMagnitude,
		CleanBatches: *clean, Interval: *interval, Rate: *rate, Seed: *seed,
		LabelBudget: *labelBudget, LabelPolicy: *labelPolicy,
		TraceSampleRate: *traceSample,
	}
	if *labelLag >= 0 {
		opts.ReplayLabels = true
		opts.LabelLag = *labelLag
	}
	return cli.SendTraffic(opts)
}

func runSink(args []string) error {
	fs := flag.NewFlagSet("sink", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8099", "sink listen address")
	fs.Parse(args)
	obs.RegisterRuntimeMetrics(obs.Default())
	sink := &cli.AlertSink{}
	fmt.Printf("alert sink listening on http://%s (POST /, GET /count, GET /events)\n", *addr)
	srv := &http.Server{Addr: *addr, Handler: sink.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}
