// Command ppm-validate is the end-to-end operator workflow: train a black
// box with its performance predictor and validator and persist them as a
// bundle, then later check unlabeled serving batches (CSV files or live
// services) against that bundle.
//
// Train a bundle on a synthetic dataset (writes three JSON artifacts):
//
//	ppm-validate train -dataset income -model xgb -out bundle/
//
// Check a serving batch stored as CSV with the schema of the dataset:
//
//	ppm-validate check -bundle bundle/ -batch serving.csv
//
// Generate a (optionally corrupted) serving batch CSV for demonstration:
//
//	ppm-validate genbatch -dataset income -corrupt scaling -magnitude 0.8 -out serving.csv
//
// Every subcommand accepts -log-level and -log-format; train also takes
// -trace, which prints the pipeline span tree (per-stage wall time) to
// stderr after training.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"blackboxval/internal/cli"
	"blackboxval/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = runTrain(os.Args[2:])
	case "check":
		err = runCheck(os.Args[2:])
	case "genbatch":
		err = runGenBatch(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ppm-validate train    -dataset <name> -model <lr|dnn|xgb> -rows N -threshold T -workers W -out <dir>
  ppm-validate check    -bundle <dir> -batch <csv> [-labels]
  ppm-validate genbatch -dataset <name> -corrupt <error> -magnitude M -rows N -out <csv>
  ppm-validate inspect  -batch <csv>`)
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dataset := fs.String("dataset", "income", "dataset name (income, heart, bank, tweets)")
	model := fs.String("model", "xgb", "model family (lr, dnn, xgb)")
	rows := fs.Int("rows", 4000, "dataset size")
	threshold := fs.Float64("threshold", 0.05, "tolerated relative accuracy drop")
	out := fs.String("out", "bundle", "output directory")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "training goroutines (0 = all cores; results identical for any value)")
	trace := fs.Bool("trace", false, "print the pipeline span tree to stderr after training")
	logCfg := registerLogFlags(fs)
	fs.Parse(args)
	if err := setupLogs(logCfg); err != nil {
		return err
	}
	report, err := cli.TrainCtx(context.Background(), cli.TrainOptions{
		Dataset: *dataset, Model: *model, Rows: *rows,
		Threshold: *threshold, OutDir: *out, Workers: *workers, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(report)
	if *trace {
		obs.DefaultTracer().Report(os.Stderr)
	}
	return nil
}

// registerLogFlags attaches the shared -log-level/-log-format flags to a
// subcommand's flag set; setupLogs applies them after parsing.
func registerLogFlags(fs *flag.FlagSet) *obs.LogConfig {
	var cfg obs.LogConfig
	cfg.RegisterFlags(fs)
	return &cfg
}

func setupLogs(cfg *obs.LogConfig) error {
	if _, err := obs.SetupLogs("ppm-validate", *cfg); err != nil {
		return err
	}
	obs.RegisterRuntimeMetrics(obs.Default())
	return nil
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	bundle := fs.String("bundle", "bundle", "bundle directory written by train")
	batch := fs.String("batch", "", "CSV file with the serving batch")
	labeled := fs.Bool("labels", false, "CSV contains a final label column (prints true score too)")
	logCfg := registerLogFlags(fs)
	fs.Parse(args)
	if err := setupLogs(logCfg); err != nil {
		return err
	}
	if *batch == "" {
		return fmt.Errorf("-batch is required")
	}
	report, err := cli.Check(cli.CheckOptions{BundleDir: *bundle, BatchCSV: *batch, Labeled: *labeled})
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	batch := fs.String("batch", "", "CSV file to profile")
	logCfg := registerLogFlags(fs)
	fs.Parse(args)
	if err := setupLogs(logCfg); err != nil {
		return err
	}
	if *batch == "" {
		return fmt.Errorf("-batch is required")
	}
	report, err := cli.Inspect(cli.InspectOptions{BatchCSV: *batch})
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func runGenBatch(args []string) error {
	fs := flag.NewFlagSet("genbatch", flag.ExitOnError)
	dataset := fs.String("dataset", "income", "dataset name")
	corrupt := fs.String("corrupt", "", "error type (missing, outliers, swapped, scaling, typos, smearing, flipped_sign, leetspeak) or empty for clean")
	magnitude := fs.Float64("magnitude", 0.5, "corruption magnitude in [0,1]")
	rows := fs.Int("rows", 1000, "batch size")
	out := fs.String("out", "serving.csv", "output CSV path")
	seed := fs.Int64("seed", 99, "random seed")
	labels := fs.Bool("labels", true, "append the label column (for demo scoring)")
	logCfg := registerLogFlags(fs)
	fs.Parse(args)
	if err := setupLogs(logCfg); err != nil {
		return err
	}
	report, err := cli.GenBatch(cli.GenBatchOptions{
		Dataset: *dataset, Corrupt: *corrupt, Magnitude: *magnitude,
		Rows: *rows, OutCSV: *out, Seed: *seed, WithLabels: *labels,
	})
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}
