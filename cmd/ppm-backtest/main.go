// Command ppm-backtest replays the durable drift timeline a monitoring
// process persisted under -tsdb-dir (ppm-monitor, ppm-gateway or
// ppm-aggregate) through the stock alert engine, offline:
//
//	ppm-backtest -tsdb-dir tsdb -rules rules.json
//	ppm-backtest -tsdb-dir tsdb -rules rules.json -json
//	ppm-backtest -tsdb-dir tsdb -rules rules.json \
//	    -sweep-rule accuracy_alarm -thresholds 0.5,0.8,0.9,1.0
//
// Replay mode (default) feeds the persisted windows, in index order,
// through a fresh engine running the given rules and prints the edge
// events — over an uncompacted range the sequence is bit-identical to
// what fired live, so the store doubles as an alert audit log. Sweep
// mode substitutes each candidate threshold into one named rule from
// the file and reports would-have-fired counts and excursion durations
// per candidate, turning threshold tuning into a measured exercise
// instead of a guess.
//
// The store opens read-only: nothing is written, deleted or compacted,
// so pointing ppm-backtest at a live process's -tsdb-dir is safe.
// -from/-to restrict the replayed window-index range. Fidelity caveat:
// ranges already downsampled by compaction replay one merged window
// per bucket, so hysteresis counts buckets there — run the producer
// with -tsdb-downsample 1 when audits must stay bit-exact forever
// (DESIGN.md §17).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"blackboxval/internal/obs/alert"
	"blackboxval/internal/obs/tsdb"
)

func main() {
	dir := flag.String("tsdb-dir", "", "segment directory written by a -tsdb-dir monitoring process (required)")
	rulesPath := flag.String("rules", "", "JSON alert rule file to replay (required; same format as -alert-rules)")
	from := flag.Int64("from", -1, "first window index to replay (-1 = start of history)")
	to := flag.Int64("to", -1, "last window index to replay (-1 = end of history)")
	sweepRule := flag.String("sweep-rule", "", "sweep mode: name of the rule in -rules whose threshold is swept")
	thresholds := flag.String("thresholds", "", "sweep mode: comma-separated candidate thresholds")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ppm-backtest -tsdb-dir DIR -rules FILE [-from N] [-to N] [-json]")
		fmt.Fprintln(os.Stderr, "       ppm-backtest -tsdb-dir DIR -rules FILE -sweep-rule NAME -thresholds a,b,c [-json]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *dir == "" || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	rules, err := alert.LoadRules(*rulesPath)
	if err != nil {
		fatal(err)
	}
	// Read-only: never mutate a store another process may be appending
	// to (no temp-file cleanup, no active segment, no retention).
	db, err := tsdb.OpenReadOnly(tsdb.Config{Dir: *dir})
	if err != nil {
		fatal(err)
	}
	entries, err := selectEntries(db, *from, *to)
	if err != nil {
		fatal(err)
	}

	if *sweepRule != "" {
		if err := runSweep(entries, rules, *sweepRule, *thresholds, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if err := runReplay(entries, rules, *jsonOut); err != nil {
		fatal(err)
	}
}

// selectEntries loads the effective persisted records clipped to the
// requested index range (-1 bounds mean "whatever the store holds").
func selectEntries(db *tsdb.DB, from, to int64) ([]tsdb.Entry, error) {
	min, max, ok := db.Bounds()
	if !ok {
		return nil, fmt.Errorf("store holds no windows")
	}
	if from < 0 {
		from = min
	}
	if to < 0 {
		to = max
	}
	if from > to {
		return nil, fmt.Errorf("-from %d is past -to %d", from, to)
	}
	entries := db.Entries(from, to)
	if len(entries) == 0 {
		return nil, fmt.Errorf("no windows in [%d, %d] (store holds [%d, %d])", from, to, min, max)
	}
	return entries, nil
}

// runReplay feeds the selected history through the rules and prints
// the edge-event sequence production would have emitted.
func runReplay(entries []tsdb.Entry, rules []alert.Rule, jsonOut bool) error {
	events, err := tsdb.ReplayEntries(entries, rules, nil)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Windows int           `json:"windows"`
			Events  []alert.Event `json:"events"`
		}{len(entries), events})
	}
	fmt.Printf("replayed %d persisted windows through %d rule(s): %d event(s)\n",
		len(entries), len(rules), len(events))
	for _, ev := range events {
		fmt.Printf("  window %-5d %-8s %-24s %s %s %g  value=%g  severity=%s\n",
			ev.WindowIndex, ev.State, ev.Rule, ev.Series, ev.Op,
			ev.Threshold, ev.Value, ev.Severity)
	}
	return nil
}

// runSweep substitutes each candidate threshold into the named rule
// and reports the would-have-fired outcome per candidate.
func runSweep(entries []tsdb.Entry, rules []alert.Rule, name, list string, jsonOut bool) error {
	var base *alert.Rule
	for i := range rules {
		if rules[i].Name == name {
			base = &rules[i]
			break
		}
	}
	if base == nil {
		return fmt.Errorf("rule %q not in the rules file", name)
	}
	var candidates []float64
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("-thresholds: %w", err)
		}
		candidates = append(candidates, v)
	}
	if len(candidates) == 0 {
		return fmt.Errorf("-sweep-rule needs -thresholds a,b,c")
	}
	rows, err := tsdb.SweepEntries(entries, *base, candidates, nil)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Rule    string          `json:"rule"`
			Windows int             `json:"windows"`
			Rows    []tsdb.SweepRow `json:"rows"`
		}{name, len(entries), rows})
	}
	fmt.Printf("swept rule %s (%s %s <threshold>, reduce=%s) over %d persisted windows\n",
		name, base.Series, base.Op, base.Reduce, len(entries))
	fmt.Printf("  %-12s %-8s %-16s %s\n", "threshold", "firings", "firing_windows", "longest")
	for _, r := range rows {
		fmt.Printf("  %-12g %-8d %-16d %d\n", r.Threshold, r.Firings, r.FiringWindows, r.Longest)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppm-backtest:", err)
	os.Exit(1)
}
