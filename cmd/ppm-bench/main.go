// Command ppm-bench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the same rows/series the paper
// reports, as plain text or markdown.
//
// Usage:
//
//	ppm-bench -exp fig2a                     # Figure 2(a): lr prediction error
//	ppm-bench -exp fig5 -scale full          # Figure 5 at full evaluation scale
//	ppm-bench -exp all -format markdown      # everything, as markdown sections
//
// Experiments: fig2a fig2b fig2c fig2d fig3 fig4 val-known fig5 fig6 fig7
// fig2a-auc fig2c-auc gen-matrix ablation-step ablation-regressor
// ablation-size ablation-ks stability pipeline timeline federate labels
// serving tsdb all
//
// The pipeline experiment times the end-to-end training pipeline with
// internal/obs spans and writes the machine-readable breakdown to
// -pipeline-out (default BENCH_pipeline.json). The timeline experiment
// measures the drift-timeline store (windows/sec ingest, /timeline
// render latency) and writes -timeline-out (default
// BENCH_timeline.json). The federate experiment measures the fleet
// aggregation layer (merged-vs-single sketch quantiles, /federate
// decode+merge throughput, fleet p99 vs naive shard rollup) and writes
// -federate-out (default BENCH_federate.json). The labels experiment
// validates the label-feedback subsystem (credible-interval coverage on
// a lagged ramp, active-vs-uniform label efficiency, conformal coverage,
// join throughput) and writes -labels-out (default BENCH_labels.json).
// The serving experiment drives a canned-backend gateway through the
// serving SLO observatory (per-stage p50/p99/p999, rows/sec, allocs/op)
// and writes -serving-out (default BENCH_serving.json).
// The tsdb experiment measures the durable timeline store (append
// windows/sec, cold segment decode + re-aggregate throughput, range
// query p50/p99, the eager-vs-lazy compaction determinism check) and
// writes -tsdb-out (default BENCH_tsdb.json).
// -trace prints a span
// report of every traced training run; -log-level and -log-format
// control structured logging.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"blackboxval/internal/experiments"
	"blackboxval/internal/obs"
	"blackboxval/internal/report"
)

// printer is implemented by every experiment result.
type printer interface{ Print(w io.Writer) }

func main() {
	exp := flag.String("exp", "all", "experiment id (see package comment) or all")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	format := flag.String("format", "text", "output format: text or markdown")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "training goroutines (0 = all cores; results identical for any value)")
	trace := flag.Bool("trace", false, "print the per-stage span report of every traced training run to stderr")
	pipelineOut := flag.String("pipeline-out", "BENCH_pipeline.json",
		"file for the machine-readable pipeline benchmark (empty disables; written by -exp pipeline)")
	timelineOut := flag.String("timeline-out", "BENCH_timeline.json",
		"file for the machine-readable timeline benchmark (empty disables; written by -exp timeline)")
	federateOut := flag.String("federate-out", "BENCH_federate.json",
		"file for the machine-readable federation benchmark (empty disables; written by -exp federate)")
	labelsOut := flag.String("labels-out", "BENCH_labels.json",
		"file for the machine-readable label-feedback benchmark (empty disables; written by -exp labels)")
	servingOut := flag.String("serving-out", "BENCH_serving.json",
		"file for the machine-readable serving hot-path benchmark (empty disables; written by -exp serving)")
	tsdbOut := flag.String("tsdb-out", "BENCH_tsdb.json",
		"file for the machine-readable durable-timeline benchmark (empty disables; written by -exp tsdb)")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if _, err := obs.SetupLogs("ppm-bench", logCfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	obs.RegisterRuntimeMetrics(obs.Default())

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleName)
		os.Exit(2)
	}
	scale.Seed = *seed
	scale.Workers = *workers
	if *format != "text" && *format != "markdown" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want text or markdown)\n", *format)
		os.Exit(2)
	}

	if err := run(*exp, scale, *format, *pipelineOut, *timelineOut, *federateOut, *labelsOut, *servingOut, *tsdbOut); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *trace {
		fmt.Fprintln(os.Stderr, "=== training stage report ===")
		obs.DefaultTracer().Report(os.Stderr)
	}
}

// runners maps experiment ids to result-producing functions.
func runners(scale experiments.Scale) map[string]func() (any, error) {
	wrap := func(f func() (any, error)) func() (any, error) { return f }
	return map[string]func() (any, error){
		"fig2a": wrap(func() (any, error) { return experiments.Figure2(scale, "lr") }),
		"fig2b": wrap(func() (any, error) { return experiments.Figure2(scale, "dnn") }),
		"fig2c": wrap(func() (any, error) { return experiments.Figure2(scale, "xgb") }),
		"fig2d": wrap(func() (any, error) { return experiments.Figure2(scale, "conv") }),
		"fig3":  wrap(func() (any, error) { return experiments.Figure3(scale) }),
		"fig4":  wrap(func() (any, error) { return experiments.Figure4(scale) }),
		"val-known": wrap(func() (any, error) {
			return experiments.ValidationKnown(scale)
		}),
		"fig5": wrap(func() (any, error) { return experiments.Figure5(scale) }),
		"fig6": wrap(func() (any, error) { return experiments.Figure6(scale) }),
		"fig7": wrap(func() (any, error) { return experiments.Figure7(scale) }),
		"fig2a-auc": wrap(func() (any, error) {
			return experiments.Figure2AUC(scale, "lr")
		}),
		"fig2c-auc": wrap(func() (any, error) {
			return experiments.Figure2AUC(scale, "xgb")
		}),
		"gen-matrix-lr": wrap(func() (any, error) {
			return experiments.GeneralizationMatrix(scale, "lr")
		}),
		"gen-matrix-xgb": wrap(func() (any, error) {
			return experiments.GeneralizationMatrix(scale, "xgb")
		}),
		"ablation-step":      wrap(func() (any, error) { return experiments.AblationPercentileStep(scale) }),
		"ablation-regressor": wrap(func() (any, error) { return experiments.AblationRegressor(scale) }),
		"ablation-size":      wrap(func() (any, error) { return experiments.AblationTrainingSize(scale) }),
		"ablation-ks":        wrap(func() (any, error) { return experiments.AblationKSFeatures(scale) }),
		"stability": wrap(func() (any, error) {
			return experiments.Stability(scale, "lr", []int64{1, 2, 3})
		}),
		"pipeline": wrap(func() (any, error) { return experiments.PipelineBench(scale) }),
		"timeline": wrap(func() (any, error) { return experiments.TimelineBench(scale) }),
		"federate": wrap(func() (any, error) { return experiments.FederateBench(scale) }),
		"labels":   wrap(func() (any, error) { return experiments.LabelsBench(scale) }),
		"serving":  wrap(func() (any, error) { return experiments.ServingBench(scale) }),
		"tsdb":     wrap(func() (any, error) { return experiments.TSDBBench(scale) }),
	}
}

// order lists the experiments in the paper's sequence for -exp all.
var order = []string{
	"fig2a", "fig2b", "fig2c", "fig2d", "fig3", "fig4",
	"val-known", "fig5", "fig6", "fig7",
	"fig2a-auc", "fig2c-auc", "gen-matrix-lr", "gen-matrix-xgb",
	"ablation-step", "ablation-regressor", "ablation-size", "ablation-ks",
	"stability", "pipeline", "timeline", "federate", "labels", "serving",
	"tsdb",
}

// aliases map legacy/composite ids to runner ids.
var aliases = map[string][]string{
	"gen-matrix": {"gen-matrix-lr", "gen-matrix-xgb"},
}

func run(exp string, scale experiments.Scale, format, pipelineOut, timelineOut, federateOut, labelsOut, servingOut, tsdbOut string) error {
	byID := runners(scale)
	ids := []string{exp}
	if exp == "all" {
		ids = order
	} else if expanded, ok := aliases[exp]; ok {
		ids = expanded
	}
	for _, id := range ids {
		runner, ok := byID[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		if exp == "all" {
			fmt.Printf("=== %s (scale=%s) ===\n", id, scale.Name)
		}
		start := time.Now()
		result, err := runner()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := emit(result, format); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if vr, ok := result.(*experiments.ValidationResult); ok && format == "text" {
			fmt.Printf("wins by method: %v\n", vr.WinsByMethod())
		}
		if pr, ok := result.(*experiments.PipelineResult); ok && pipelineOut != "" {
			if err := writeJSON(pipelineOut, pr); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Printf("pipeline benchmark written to %s\n", pipelineOut)
		}
		if tr, ok := result.(*experiments.TimelineResult); ok && timelineOut != "" {
			if err := writeJSON(timelineOut, tr); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Printf("timeline benchmark written to %s\n", timelineOut)
		}
		if fr, ok := result.(*experiments.FederateResult); ok && federateOut != "" {
			if err := writeJSON(federateOut, fr); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Printf("federation benchmark written to %s\n", federateOut)
		}
		if lr, ok := result.(*experiments.LabelsResult); ok && labelsOut != "" {
			if err := writeJSON(labelsOut, lr); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Printf("label-feedback benchmark written to %s\n", labelsOut)
		}
		if sr, ok := result.(*experiments.ServingResult); ok && servingOut != "" {
			if err := writeJSON(servingOut, sr); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Printf("serving benchmark written to %s\n", servingOut)
		}
		if dr, ok := result.(*experiments.TSDBResult); ok && tsdbOut != "" {
			if err := writeJSON(tsdbOut, dr); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Printf("tsdb benchmark written to %s\n", tsdbOut)
		}
		if exp == "all" {
			fmt.Printf("--- %s done in %s ---\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// writeJSON marshals v with indentation into path.
func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func emit(result any, format string) error {
	if format == "markdown" {
		md, err := report.Markdown(result)
		if err != nil {
			return err
		}
		fmt.Println(md)
		return nil
	}
	p, ok := result.(printer)
	if !ok {
		return fmt.Errorf("result %T has no text printer", result)
	}
	p.Print(os.Stdout)
	return nil
}
