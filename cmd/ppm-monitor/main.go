// Command ppm-monitor watches a directory for serving batch CSVs,
// evaluates each against a trained bundle (see ppm-validate train) and
// optionally serves the monitoring dashboard over HTTP:
//
//	ppm-monitor -bundle bundle -watch /var/spool/batches -addr 127.0.0.1:8090
//
// Every new .csv file in the watch directory is scored once; GET /
// serves the auto-refreshing HTML drift dashboard (-refresh tunes its
// poll cadence) and /summary, /history, /alarming and /timeline expose
// the monitor state as JSON. -alert-rules loads threshold-for-duration
// alert rules (JSON) evaluated on every timeline window close, and
// -alert-webhook POSTs the firing/resolved events to an HTTP endpoint
// (see ppm-traffic sink). The dashboard address also serves the shared
// observability surface: GET /metrics (Prometheus text exposition with
// the ppm_monitor_*, ppm_alert* and ppm_incident_* families),
// /debug/pprof/*, /debug/spans and /debug/incidents (the incident
// flight recorder: alert fire transitions — or POST
// /debug/incidents/trigger — capture diagnostic bundles with
// per-column drift attribution; -incident-dir persists them as JSON;
// render with ppm-diagnose). The label-feedback endpoints ride the same
// address: POST /labels ingests delayed ground truth joined by
// X-Request-ID, GET /labels/requests serves the active labeling
// worklist and GET /labels/status the Bayesian assessment
// (-label-lag/-label-pending/-label-seed tune it; distinct from the
// -labels bool, which marks CSVs that already carry labels).
// -tsdb-dir persists every closed timeline window to an on-disk
// segment store so history survives restarts: GET /timeline/range
// serves range queries with server-side re-aggregation
// (-tsdb-retention and friends bound the footprint; replay it with
// ppm-backtest). -log-level and -log-format control structured
// logging.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"blackboxval/internal/cli"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/incident"
)

func main() {
	bundle := flag.String("bundle", "bundle", "bundle directory written by ppm-validate train")
	watch := flag.String("watch", ".", "directory polled for serving batch CSVs")
	addr := flag.String("addr", "", "dashboard listen address (empty = no dashboard)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	hysteresis := flag.Int("hysteresis", 1, "consecutive violating batches before alarming")
	labeled := flag.Bool("labels", false, "batch CSVs carry a trailing label column")
	maxBatches := flag.Int("max-batches", 0, "stop after N batches (0 = run forever)")
	refresh := flag.Duration("refresh", 5*time.Second, "dashboard auto-refresh interval (<=0 disables)")
	timelineWindow := flag.Int("timeline-window", 1, "batches aggregated into one drift-timeline window")
	timelineCapacity := flag.Int("timeline-capacity", 128, "retained drift-timeline windows")
	alertRules := flag.String("alert-rules", "", "JSON alert rule file (empty = alerting off)")
	alertWebhook := flag.String("alert-webhook", "", "webhook URL receiving alert events as JSON POSTs")
	incidentDir := flag.String("incident-dir", "", "directory retaining incident bundles as JSON (empty = in-memory only)")
	incidentRows := flag.Int("incident-rows", 0, "incident reservoir size in raw serving rows (0 = default 512)")
	incidentMax := flag.Int("incident-max", 0, "retained incident bundles (0 = default 16)")
	incidentSeed := flag.Int64("incident-seed", 0, "incident reservoir sampling seed (0 = default 1)")
	labelLag := flag.Int64("label-lag", 0, "label join horizon in drift-timeline windows (0 = default 64)")
	labelPending := flag.Int("label-pending", 0, "served batches retained awaiting labels (0 = default 512)")
	labelSeed := flag.Int64("label-seed", 0, "active-sampling RNG seed (0 = default 1)")
	traceDir := flag.String("trace-dir", "", "span journal directory for cross-process trace stitching (empty = in-memory ring only)")
	var tsdbFlags cli.TSDBFlags
	tsdbFlags.RegisterFlags(flag.CommandLine)
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := obs.SetupLogs("ppm-monitor", logCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	dashRefresh := *refresh
	if dashRefresh <= 0 {
		dashRefresh = -1 // monitor treats negative as "auto-refresh off"
	}
	mon, run, err := cli.PrepareWatch(cli.WatchOptions{
		BundleDir: *bundle, WatchDir: *watch, Interval: *interval,
		Hysteresis: *hysteresis, Labeled: *labeled, MaxBatches: *maxBatches,
		TimelineWindow: *timelineWindow, TimelineCapacity: *timelineCapacity,
		DashboardRefresh: dashRefresh,
	})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	mon.RegisterMetrics(obs.Default())
	obs.RegisterRuntimeMetrics(obs.Default())
	closeTracing, err := cli.WireTracing(cli.TracingOptions{Dir: *traceDir, Logger: logger})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	defer closeTracing()
	lstore, err := cli.WireLabels(mon, cli.LabelOptions{
		MaxLagWindows: *labelLag,
		MaxPending:    *labelPending,
		Seed:          *labelSeed,
		Logger:        logger,
	})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	rec, err := cli.WireIncidents(mon, cli.IncidentOptions{
		BundleDir:     *bundle,
		Dir:           *incidentDir,
		MaxBundles:    *incidentMax,
		ReservoirRows: *incidentRows,
		Seed:          *incidentSeed,
		Labels:        lstore,
		Logger:        logger,
	})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	_, closeAlerts, err := cli.WireAlerts(mon, cli.AlertOptions{
		RulesPath: *alertRules, WebhookURL: *alertWebhook,
		Notifier: rec.AlertNotifier(), Logger: logger,
	})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	defer closeAlerts()
	if *alertRules != "" {
		logger.Info("alerting on", "rules", *alertRules, "webhook", *alertWebhook)
	}
	tsdbDB, closeTSDB, err := cli.WireTSDB(mon.Timeline(), tsdbFlags.Options(obs.Default(), logger))
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	defer closeTSDB()
	if tsdbDB != nil {
		logger.Info("durable timeline on", "dir", tsdbFlags.Dir, "retention", tsdbFlags.Retention)
	}
	if *addr != "" {
		go func() {
			// The dashboard (HTML at /, JSON endpoints beside it) shares
			// the mux with the process metrics, profiling and span traces.
			mux := http.NewServeMux()
			mux.Handle("/", mon.Handler())
			mux.Handle(incident.MountPath, rec.Handler())
			mux.Handle(incident.MountPath+"/", rec.Handler())
			mux.Handle("/labels", lstore.Handler())
			mux.Handle("/labels/", lstore.Handler())
			if tsdbDB != nil {
				// Durable history beside the live ring: the exact path wins
				// over the monitor's "/" catch-all.
				mux.Handle("/timeline/range", tsdbDB.RangeHandler())
			}
			obs.Mount(mux, obs.Default(), obs.DefaultTracer())
			logger.Info("dashboard up",
				"dashboard", fmt.Sprintf("http://%s/", *addr),
				"timeline", fmt.Sprintf("http://%s/timeline", *addr),
				"metrics", fmt.Sprintf("http://%s/metrics", *addr),
				"pprof", fmt.Sprintf("http://%s/debug/pprof/", *addr))
			if err := http.ListenAndServe(*addr, mux); err != nil {
				logger.Error("dashboard server failed", "err", err)
				os.Exit(1)
			}
		}()
	}
	if err := run(); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}
