// Command ppm-monitor watches a directory for serving batch CSVs,
// evaluates each against a trained bundle (see ppm-validate train) and
// optionally serves the monitoring dashboard over HTTP:
//
//	ppm-monitor -bundle bundle -watch /var/spool/batches -addr 127.0.0.1:8090
//
// Every new .csv file in the watch directory is scored once; GET
// /summary, /history and /alarming on the dashboard address expose the
// monitor state as JSON.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"blackboxval/internal/cli"
)

func main() {
	bundle := flag.String("bundle", "bundle", "bundle directory written by ppm-validate train")
	watch := flag.String("watch", ".", "directory polled for serving batch CSVs")
	addr := flag.String("addr", "", "dashboard listen address (empty = no dashboard)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	hysteresis := flag.Int("hysteresis", 1, "consecutive violating batches before alarming")
	labeled := flag.Bool("labels", false, "batch CSVs carry a trailing label column")
	maxBatches := flag.Int("max-batches", 0, "stop after N batches (0 = run forever)")
	flag.Parse()

	mon, run, err := cli.PrepareWatch(cli.WatchOptions{
		BundleDir: *bundle, WatchDir: *watch, Interval: *interval,
		Hysteresis: *hysteresis, Labeled: *labeled, MaxBatches: *maxBatches,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *addr != "" {
		go func() {
			log.Printf("dashboard at http://%s/summary", *addr)
			log.Fatal(http.ListenAndServe(*addr, mon.Handler()))
		}()
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
}
