// Command ppm-monitor watches a directory for serving batch CSVs,
// evaluates each against a trained bundle (see ppm-validate train) and
// optionally serves the monitoring dashboard over HTTP:
//
//	ppm-monitor -bundle bundle -watch /var/spool/batches -addr 127.0.0.1:8090
//
// Every new .csv file in the watch directory is scored once; GET
// /summary, /history and /alarming on the dashboard address expose the
// monitor state as JSON. The dashboard address also serves the shared
// observability surface: GET /metrics (Prometheus text exposition with
// the ppm_monitor_* families), /debug/pprof/* and /debug/spans.
// -log-level and -log-format control structured logging.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"blackboxval/internal/cli"
	"blackboxval/internal/obs"
)

func main() {
	bundle := flag.String("bundle", "bundle", "bundle directory written by ppm-validate train")
	watch := flag.String("watch", ".", "directory polled for serving batch CSVs")
	addr := flag.String("addr", "", "dashboard listen address (empty = no dashboard)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	hysteresis := flag.Int("hysteresis", 1, "consecutive violating batches before alarming")
	labeled := flag.Bool("labels", false, "batch CSVs carry a trailing label column")
	maxBatches := flag.Int("max-batches", 0, "stop after N batches (0 = run forever)")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := obs.SetupLogs("ppm-monitor", logCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	mon, run, err := cli.PrepareWatch(cli.WatchOptions{
		BundleDir: *bundle, WatchDir: *watch, Interval: *interval,
		Hysteresis: *hysteresis, Labeled: *labeled, MaxBatches: *maxBatches,
	})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	mon.RegisterMetrics(obs.Default())
	if *addr != "" {
		go func() {
			// The dashboard JSON endpoints share the mux with the
			// process metrics, profiling and span traces.
			mux := http.NewServeMux()
			mux.Handle("/", mon.Handler())
			obs.Mount(mux, obs.Default(), obs.DefaultTracer())
			logger.Info("dashboard up",
				"summary", fmt.Sprintf("http://%s/summary", *addr),
				"metrics", fmt.Sprintf("http://%s/metrics", *addr),
				"pprof", fmt.Sprintf("http://%s/debug/pprof/", *addr))
			if err := http.ListenAndServe(*addr, mux); err != nil {
				logger.Error("dashboard server failed", "err", err)
				os.Exit(1)
			}
		}()
	}
	if err := run(); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}
