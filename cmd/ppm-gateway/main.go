// Command ppm-gateway is the shadow-validation serving proxy: it sits
// between clients and a black box model server (e.g. ppm-serve),
// hardens the path to the backend (timeouts, retries with backoff, a
// circuit breaker that sheds load while the backend is down), and — off
// the hot path — taps every response batch into a trained performance
// predictor so the model's estimated accuracy and alarm state are
// maintained continuously without labels.
//
// Usage:
//
//	ppm-validate train -dataset income -model xgb -out bundle
//	ppm-serve    -dataset income -model xgb -addr 127.0.0.1:8080
//	ppm-gateway  -backend http://127.0.0.1:8080 -bundle bundle -addr 127.0.0.1:8088
//
// Endpoints: POST /predict_proba (proxied, X-Request-ID minted and
// pinned on every response), GET /metrics (Prometheus text), GET
// /status (JSON), GET /healthz (503 while the performance alarm
// fires), GET /monitor/* (HTML drift dashboard plus /monitor/timeline
// JSON, with -bundle), GET /debug/pprof/* and /debug/spans (profiling
// and span traces). Without -bundle the gateway runs as a pure
// resilience proxy. -alert-rules loads threshold-for-duration alert
// rules evaluated on every drift-timeline window close and
// -alert-webhook POSTs the firing/resolved events to an HTTP endpoint
// (see ppm-traffic sink). The serving SLO observatory is always on:
// every proxied request is timed per stage into mergeable latency
// histograms with X-Request-ID exemplars, exposed as ppm_serving_*
// metric families, a GET /slo JSON document, latency panels on the
// dashboards and the /federate document, and burn-rate series
// (-slo-budget/-slo-target/-slo-window tune the budget and windows;
// -burn-threshold tunes the built-in fast+slow burn-rate alert pair,
// <=0 disables it). With -bundle the incident flight recorder is
// on: every alert fire transition (or POST /debug/incidents/trigger)
// captures a diagnostic bundle with per-column drift attribution —
// plus a bounded CPU+heap pprof pair (-profile-cpu/-profile-cooldown)
// and the serving SLO snapshot with its slowest-request exemplars — and
// GET /debug/incidents lists the retained ones (-incident-dir persists
// them as JSON; render with ppm-diagnose). With -bundle the label
// feedback loop is also on: POST /labels ingests delayed ground truth
// joined by X-Request-ID, GET /labels/requests serves the active
// (Thompson) labeling worklist, GET /labels/status the Bayesian
// assessment (-label-lag/-label-pending/-label-seed tune it). With
// -bundle, -tsdb-dir persists every closed drift-timeline window to
// an on-disk segment store: GET /monitor/timeline/range serves range
// queries over the durable history, which survives restarts and
// replays offline via ppm-backtest (-tsdb-retention and friends bound
// the footprint). -log-level and -log-format control structured
// logging.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"blackboxval/internal/cli"
	"blackboxval/internal/cloud"
	"blackboxval/internal/data"
	"blackboxval/internal/gateway"
	"blackboxval/internal/labels"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
	"blackboxval/internal/obs/incident"
	"blackboxval/internal/obs/tsdb"
)

func main() {
	backend := flag.String("backend", "http://127.0.0.1:8080", "base URL of the model server")
	bundle := flag.String("bundle", "", "bundle directory written by ppm-validate train (empty = proxy only, no shadow validation)")
	addr := flag.String("addr", "127.0.0.1:8088", "gateway listen address")
	hysteresis := flag.Int("hysteresis", 1, "consecutive violating batches before the alarm fires")
	timeout := flag.Duration("timeout", 10*time.Second, "per-attempt backend timeout")
	retries := flag.Int("retries", 2, "retry attempts after the first try on transient backend failures")
	queueSize := flag.Int("shadow-queue", 256, "bounded shadow-validation queue size (drop-oldest under pressure)")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive backend failures that open the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 10*time.Second, "how long the breaker stays open before probing")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain deadline")
	refresh := flag.Duration("refresh", 5*time.Second, "monitor dashboard auto-refresh interval (<=0 disables)")
	replica := flag.String("replica", "", "replica name advertised in /federate documents (empty = generated id prefix)")
	timelineWindow := flag.Int("timeline-window", 1, "batches aggregated into one drift-timeline window")
	timelineCapacity := flag.Int("timeline-capacity", 128, "retained drift-timeline windows")
	alertRules := flag.String("alert-rules", "", "JSON alert rule file (empty = alerting off)")
	alertWebhook := flag.String("alert-webhook", "", "webhook URL receiving alert events as JSON POSTs")
	incidentDir := flag.String("incident-dir", "", "directory retaining incident bundles as JSON (empty = in-memory only)")
	incidentRows := flag.Int("incident-rows", 0, "incident reservoir size in raw serving rows (0 = default 512)")
	incidentMax := flag.Int("incident-max", 0, "retained incident bundles (0 = default 16)")
	incidentSeed := flag.Int64("incident-seed", 0, "incident reservoir sampling seed (0 = default 1)")
	labelLag := flag.Int64("label-lag", 0, "label join horizon in drift-timeline windows (0 = default 64)")
	labelPending := flag.Int("label-pending", 0, "served batches retained awaiting labels (0 = default 512)")
	labelSeed := flag.Int64("label-seed", 0, "active-sampling RNG seed (0 = default 1)")
	sloBudget := flag.Duration("slo-budget", 0, "per-request latency budget (0 = default 250ms)")
	sloTarget := flag.Float64("slo-target", 0, "SLO target fraction of in-budget requests (0 = default 0.99)")
	sloWindow := flag.Int("slo-window", 0, "requests per SLO timeline window (0 = default 64)")
	burnThreshold := flag.Float64("burn-threshold", 1.0, "burn-rate alert threshold; fires when BOTH the fast and slow windows burn above it (<=0 disables)")
	profileCPU := flag.Duration("profile-cpu", 0, "CPU profile duration captured into alert-triggered incident bundles (0 = default 250ms)")
	profileCooldown := flag.Duration("profile-cooldown", 0, "minimum gap between profile captures (0 = default 30s)")
	traceDir := flag.String("trace-dir", "", "span journal directory for cross-process trace stitching (empty = in-memory ring only)")
	traceSample := flag.Float64("trace-sample", 1, "deterministic head-sampling rate for traces this gateway mints (<=0 or >1 = sample everything); incoming traceparent flags win")
	var tsdbFlags cli.TSDBFlags
	tsdbFlags.RegisterFlags(flag.CommandLine)
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := obs.SetupLogs("ppm-gateway", logCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dashRefresh := *refresh
	if dashRefresh <= 0 {
		dashRefresh = -1 // monitor treats negative as "auto-refresh off"
	}
	opts := options{
		backend: *backend, bundle: *bundle, addr: *addr, replica: *replica,
		hysteresis: *hysteresis, timeout: *timeout, retries: *retries,
		queueSize: *queueSize, breakerFailures: *breakerFailures,
		breakerCooldown: *breakerCooldown, drain: *drain,
		refresh: dashRefresh, timelineWindow: *timelineWindow,
		timelineCapacity: *timelineCapacity,
		alertRules:       *alertRules, alertWebhook: *alertWebhook,
		incidentDir: *incidentDir, incidentRows: *incidentRows,
		incidentMax: *incidentMax, incidentSeed: *incidentSeed,
		labelLag: *labelLag, labelPending: *labelPending, labelSeed: *labelSeed,
		sloBudget: *sloBudget, sloTarget: *sloTarget, sloWindow: *sloWindow,
		burnThreshold: *burnThreshold,
		profileCPU:    *profileCPU, profileCooldown: *profileCooldown,
		traceDir: *traceDir, traceSample: *traceSample,
		tsdb: tsdbFlags,
	}
	if err := run(opts, logger); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}

// options carries the parsed flags into run.
type options struct {
	backend, bundle, addr            string
	replica                          string
	hysteresis, retries, queueSize   int
	breakerFailures                  int
	timeout, breakerCooldown, drain  time.Duration
	refresh                          time.Duration
	timelineWindow, timelineCapacity int
	alertRules, alertWebhook         string
	incidentDir                      string
	incidentRows, incidentMax        int
	incidentSeed                     int64
	labelLag, labelSeed              int64
	labelPending                     int
	sloBudget                        time.Duration
	sloTarget                        float64
	sloWindow                        int
	burnThreshold                    float64
	profileCPU, profileCooldown      time.Duration
	traceDir                         string
	traceSample                      float64
	tsdb                             cli.TSDBFlags
}

func run(opts options, logger *slog.Logger) error {
	cfg := gateway.Config{
		Backend:         opts.backend,
		ReplicaName:     opts.replica,
		RequestTimeout:  opts.timeout,
		MaxRetries:      opts.retries,
		ShadowQueueSize: opts.queueSize,
		// Route the gateway's stdlib-style operational log lines through
		// the structured handler.
		Logger: obs.StdLogger(logger, slog.LevelInfo),
		Breaker: gateway.BreakerConfig{
			FailureThreshold: opts.breakerFailures,
			Cooldown:         opts.breakerCooldown,
		},
		SLO: gateway.SLOConfig{
			Budget:         opts.sloBudget,
			Target:         opts.sloTarget,
			WindowRequests: opts.sloWindow,
		},
		TraceSampleRate: opts.traceSample,
	}

	var manifest *cli.Manifest
	if opts.bundle != "" {
		// The black box stays remote: attach the backend client to the
		// locally trained validation artifacts.
		remote := cloud.NewClient(opts.backend)
		m, pred, val, err := cli.LoadServingBundle(opts.bundle, remote)
		if err != nil {
			return err
		}
		manifest = m
		mon, err := monitor.New(monitor.Config{
			Predictor:        pred,
			Validator:        val,
			Threshold:        manifest.Threshold,
			Hysteresis:       opts.hysteresis,
			TimelineWindow:   opts.timelineWindow,
			TimelineCapacity: opts.timelineCapacity,
			DashboardRefresh: opts.refresh,
		})
		if err != nil {
			return err
		}
		cfg.Monitor = mon
		// Recover the raw serving rows from each proxied request body so
		// the incident recorder's reservoir samples real feature vectors,
		// not just model outputs.
		classes := append([]string(nil), manifest.Classes...)
		cfg.RawDecoder = func(body []byte) (*data.Dataset, error) {
			return cloud.DecodeRequest(body, classes)
		}
		logger.Info("shadow validation on", "dataset", manifest.Dataset, "model", manifest.Model,
			"reference_accuracy", manifest.TestScore, "alarm_line", mon.AlarmLine())
	} else if opts.alertRules != "" {
		return fmt.Errorf("-alert-rules needs -bundle (no monitor, no drift timeline)")
	} else {
		logger.Info("no -bundle given: running as a pure resilience proxy")
	}

	g, err := gateway.New(cfg)
	if err != nil {
		return err
	}
	defer g.Close()
	// Go runtime self-telemetry rides the same /metrics scrape as the
	// proxy and monitor families.
	obs.RegisterRuntimeMetrics(g.Metrics().Registry())
	// Gateway and shadow-monitor spans share the process default
	// tracer, so one journal carries this process's trace fragments.
	closeTracing, err := cli.WireTracing(cli.TracingOptions{
		Dir:      opts.traceDir,
		Registry: g.Metrics().Registry(),
		Logger:   logger,
	})
	if err != nil {
		return err
	}
	defer closeTracing()

	var rec *incident.Recorder
	var lstore *labels.Store
	var tsdbDB *tsdb.DB
	if cfg.Monitor != nil {
		// Surface the monitor's own families (estimate, alarm line,
		// batch/violation counters) on the gateway's /metrics endpoint.
		cfg.Monitor.RegisterMetrics(g.Metrics().Registry())
		// The label-feedback store rides the same shadow batch stream:
		// delayed ground truth POSTed to /labels joins against what this
		// gateway served, assessed as Beta-Bernoulli credible intervals on
		// the drift timeline next to h's unlabeled estimate.
		lstore, err = cli.WireLabels(cfg.Monitor, cli.LabelOptions{
			MaxLagWindows: opts.labelLag,
			MaxPending:    opts.labelPending,
			Seed:          opts.labelSeed,
			Registry:      g.Metrics().Registry(),
			Logger:        logger,
		})
		if err != nil {
			return err
		}
		// The incident flight recorder samples every shadow-observed
		// batch; alert fire transitions (below) auto-capture bundles.
		// Alert-triggered profiling: every captured bundle embeds a
		// bounded CPU+heap pprof pair (the profiler's cooldown bounds the
		// cost) plus the serving SLO snapshot with its slow-request
		// exemplars.
		profiler := obs.NewProfiler(obs.ProfilerConfig{
			CPUDuration: opts.profileCPU,
			Cooldown:    opts.profileCooldown,
		})
		rec, err = cli.WireIncidents(cfg.Monitor, cli.IncidentOptions{
			BundleDir:     opts.bundle,
			Dir:           opts.incidentDir,
			MaxBundles:    opts.incidentMax,
			ReservoirRows: opts.incidentRows,
			Seed:          opts.incidentSeed,
			Labels:        lstore,
			Profiler:      profiler,
			Serving:       g.IncidentServing,
			Registry:      g.Metrics().Registry(),
			Logger:        logger,
		})
		if err != nil {
			return err
		}
		// Alert metrics land on the same registry so one /metrics scrape
		// covers the proxy, the monitor and the alert engine.
		_, closeAlerts, err := cli.WireAlerts(cfg.Monitor, cli.AlertOptions{
			RulesPath:  opts.alertRules,
			WebhookURL: opts.alertWebhook,
			Notifier:   rec.AlertNotifier(),
			Registry:   g.Metrics().Registry(),
			Logger:     logger,
		})
		if err != nil {
			return err
		}
		defer closeAlerts()
		if opts.alertRules != "" {
			logger.Info("alerting on", "rules", opts.alertRules, "webhook", opts.alertWebhook)
		}
		// Durable drift history: every closed timeline window is
		// persisted to the segment store so history survives restarts
		// and ppm-backtest can replay it offline. The deferred close
		// runs after the drain in ListenAndServe returns, sealing the
		// active segment on SIGTERM.
		var closeTSDB func()
		tsdbDB, closeTSDB, err = cli.WireTSDB(cfg.Monitor.Timeline(), opts.tsdb.Options(g.Metrics().Registry(), logger))
		if err != nil {
			return err
		}
		defer closeTSDB()
		if tsdbDB != nil {
			logger.Info("durable timeline on", "dir", opts.tsdb.Dir,
				"range", fmt.Sprintf("http://%s/monitor/timeline/range", opts.addr))
		}
	} else if opts.tsdb.Dir != "" {
		return fmt.Errorf("-tsdb-dir needs -bundle (no monitor, no drift timeline)")
	}

	// Burn-rate alerting on the serving SLO timeline — on by default,
	// bundle or not: the SRE fast+slow multi-window pair from
	// gateway.BurnRateRules, evaluated on every SLO window close. With
	// an incident recorder wired, a firing rule auto-captures a
	// profiled bundle.
	if opts.burnThreshold > 0 {
		burnCfg := alert.Config{
			Rules:  gateway.BurnRateRules(opts.burnThreshold),
			Logger: logger,
		}
		if rec != nil {
			burnCfg.Notifier = rec.AlertNotifier()
		}
		burn, err := alert.New(burnCfg)
		if err != nil {
			return err
		}
		burn.RegisterMetrics(g.Metrics().Registry())
		g.SLOTimeline().OnWindowClose(burn.Evaluate)
		logger.Info("serving SLO observatory on", "slo", fmt.Sprintf("http://%s/slo", opts.addr),
			"burn_threshold", opts.burnThreshold)
	}

	// The gateway handler owns /metrics (its own registry) plus the
	// proxy endpoints; mount the process-wide profiling and span-trace
	// surface next to it.
	mux := http.NewServeMux()
	mux.Handle("/", g.Handler())
	obs.MountPprof(mux)
	mux.Handle("/debug/spans", obs.DefaultTracer().Handler())
	if rec != nil {
		mux.Handle(incident.MountPath, rec.Handler())
		mux.Handle(incident.MountPath+"/", rec.Handler())
		logger.Info("incident recorder on", "list", incident.MountPath,
			"dir", opts.incidentDir)
	}
	if lstore != nil {
		mux.Handle("/labels", lstore.Handler())
		mux.Handle("/labels/", lstore.Handler())
		logger.Info("label feedback on", "ingest", "POST /labels",
			"worklist", "GET /labels/requests", "status", "GET /labels/status")
	}
	if tsdbDB != nil {
		// Exact path beats both the "/" catch-all and the /monitor/
		// subtree, so the durable range endpoint sits where the
		// dashboard's relative "timeline/range" fetch resolves.
		mux.Handle("/monitor/timeline/range", tsdbDB.RangeHandler())
	}

	logger.Info("proxying", "from", fmt.Sprintf("http://%s/predict_proba", opts.addr),
		"to", opts.backend+"/predict_proba")
	logger.Info("observability", "metrics", fmt.Sprintf("http://%s/metrics", opts.addr),
		"status", "/status", "healthz", "/healthz", "pprof", "/debug/pprof/")
	if err := gateway.ListenAndServe(opts.addr, mux, opts.drain); err != nil {
		return fmt.Errorf("gateway: %w", err)
	}
	return nil
}
