// Command ppm-serve trains a black box model on one of the synthetic
// datasets and hosts it behind the HTTP prediction API — the local
// stand-in for a cloud ML service like Google AutoML Tables. Point
// example clients or a performance predictor at the printed address.
//
// Usage:
//
//	ppm-serve -dataset income -model xgb -addr 127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"blackboxval"
	"blackboxval/internal/experiments"
	"blackboxval/internal/gateway"
)

func main() {
	dataset := flag.String("dataset", "income", "dataset to train on (income, heart, bank, tweets, digits, fashion)")
	model := flag.String("model", "xgb", "model family (lr, dnn, xgb, conv, automl)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	rows := flag.Int("rows", 4000, "dataset size")
	seed := flag.Int64("seed", 1, "random seed")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain deadline")
	flag.Parse()

	if err := run(*dataset, *model, *addr, *rows, *seed, *drain); err != nil {
		log.Fatal(err)
	}
}

func run(dataset, modelName, addr string, rows int, seed int64, drain time.Duration) error {
	scale := experiments.Quick
	scale.TabularRows = rows
	scale.ImageRows = rows
	ds, err := scale.GenerateDataset(dataset, seed)
	if err != nil {
		return err
	}
	train, test, _ := experiments.Splits(ds, seed)

	var model blackboxval.Model
	if modelName == "automl" {
		model, err = blackboxval.AutoSklearn(train, blackboxval.AutoMLConfig{Seed: seed})
	} else {
		model, err = scale.TrainModel(modelName, train, seed)
	}
	if err != nil {
		return fmt.Errorf("training %s on %s: %w", modelName, dataset, err)
	}

	acc := blackboxval.AccuracyScore(model.PredictProba(test), test.Labels)
	log.Printf("trained %s on %s (%d rows), held-out accuracy %.3f", modelName, dataset, rows, acc)
	log.Printf("serving POST http://%s/predict_proba", addr)
	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain
	// in-flight predictions, then exit (shared with ppm-gateway).
	return gateway.ListenAndServe(addr, blackboxval.NewCloudServer(model).Handler(), drain)
}
