// Command ppm-serve trains a black box model on one of the synthetic
// datasets and hosts it behind the HTTP prediction API — the local
// stand-in for a cloud ML service like Google AutoML Tables. Point
// example clients or a performance predictor at the printed address.
//
// Usage:
//
//	ppm-serve -dataset income -model xgb -addr 127.0.0.1:8080
//
// Besides POST /predict_proba the server exposes the shared
// observability surface: GET /metrics (Prometheus text exposition,
// including request counters and latency histograms), /debug/pprof/*
// and /debug/spans. An incoming X-Request-ID (minted by ppm-gateway)
// is echoed on the response and attached to the request span, so one
// correlation id follows a batch end to end. -log-level and
// -log-format control structured logging.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"blackboxval"
	"blackboxval/internal/cli"
	"blackboxval/internal/experiments"
	"blackboxval/internal/gateway"
	"blackboxval/internal/obs"
)

func main() {
	dataset := flag.String("dataset", "income", "dataset to train on (income, heart, bank, tweets, digits, fashion)")
	model := flag.String("model", "xgb", "model family (lr, dnn, xgb, conv, automl)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	rows := flag.Int("rows", 4000, "dataset size")
	seed := flag.Int64("seed", 1, "random seed")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain deadline")
	traceDir := flag.String("trace-dir", "", "span journal directory for cross-process trace stitching (empty = in-memory ring only)")
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := obs.SetupLogs("ppm-serve", logCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(*dataset, *model, *addr, *rows, *seed, *drain, *traceDir, logger); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run(dataset, modelName, addr string, rows int, seed int64, drain time.Duration, traceDir string, logger *slog.Logger) error {
	scale := experiments.Quick
	scale.TabularRows = rows
	scale.ImageRows = rows
	ds, err := scale.GenerateDataset(dataset, seed)
	if err != nil {
		return err
	}
	train, test, _ := experiments.Splits(ds, seed)

	var model blackboxval.Model
	if modelName == "automl" {
		model, err = blackboxval.AutoSklearn(train, blackboxval.AutoMLConfig{Seed: seed})
	} else {
		model, err = scale.TrainModel(modelName, train, seed)
	}
	if err != nil {
		return fmt.Errorf("training %s on %s: %w", modelName, dataset, err)
	}

	acc := blackboxval.AccuracyScore(model.PredictProba(test), test.Labels)
	logger.Info("model trained", "model", modelName, "dataset", dataset, "rows", rows, "accuracy", acc)

	// The prediction API plus the shared observability surface, with
	// request accounting around the model endpoints. The trace
	// middleware extracts the gateway's traceparent so sampled requests
	// get a backend_predict span in the end-to-end waterfall.
	mux := http.NewServeMux()
	mux.Handle("/", obs.Middleware(obs.Default(), "ppm-serve",
		obs.TraceMiddleware(obs.DefaultTracer(), blackboxval.NewCloudServer(model).Handler())))
	obs.RegisterRuntimeMetrics(obs.Default())
	obs.Mount(mux, obs.Default(), obs.DefaultTracer())
	closeTracing, err := cli.WireTracing(cli.TracingOptions{Dir: traceDir, Logger: logger})
	if err != nil {
		return err
	}
	defer closeTracing()

	logger.Info("serving", "predict", fmt.Sprintf("http://%s/predict_proba", addr),
		"metrics", fmt.Sprintf("http://%s/metrics", addr),
		"pprof", fmt.Sprintf("http://%s/debug/pprof/", addr))
	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain
	// in-flight predictions, then exit (shared with ppm-gateway).
	return gateway.ListenAndServe(addr, mux, drain)
}
