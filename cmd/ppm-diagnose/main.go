// Command ppm-diagnose renders incident flight-recorder bundles (the
// JSON files written by ppm-gateway/ppm-monitor under -incident-dir,
// or fetched from GET /debug/incidents/{id}) into human-readable
// markdown incident reports:
//
//	ppm-diagnose incidents/inc-000003.json
//	ppm-diagnose -dir incidents            # newest bundle in the ring
//	ppm-diagnose -dir incidents -out report.md
//
// The report leads with the ranked per-column drift attribution — the
// REL test battery (two-sample KS per numeric column, chi-squared per
// categorical column, Bonferroni-corrected) between the bundle's
// serving-row reservoir and the trained reference sample — followed by
// the predicted-class histogram shift, the worst-scoring batches with
// their X-Request-IDs, the serving SLO snapshot (stage quantiles and
// slowest-request exemplars), the embedded pprof profile sizes, and
// the drift-timeline excerpt. -extract-profiles DIR additionally
// writes each bundle's CPU+heap pprof pair to DIR for go tool pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"blackboxval/internal/obs/incident"
	"blackboxval/internal/report"
)

func main() {
	dir := flag.String("dir", "", "incident retention directory; renders the newest bundle (alternative to positional files)")
	out := flag.String("out", "", "output file (empty = stdout)")
	extract := flag.String("extract-profiles", "", "directory receiving each bundle's embedded pprof pair as <bundle>-cpu.pprof / <bundle>-heap.pprof (open with go tool pprof)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ppm-diagnose [-dir DIR | BUNDLE.json ...] [-out FILE] [-extract-profiles DIR]")
		flag.PrintDefaults()
	}
	flag.Parse()

	paths := flag.Args()
	if *dir != "" {
		newest, err := newestBundle(*dir)
		if err != nil {
			fatal(err)
		}
		paths = append(paths, newest)
	}
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var sections []string
	for _, path := range paths {
		b, err := incident.LoadBundle(path)
		if err != nil {
			fatal(err)
		}
		md, err := report.Markdown(b)
		if err != nil {
			fatal(err)
		}
		sections = append(sections, md)
		if *extract != "" {
			if err := extractProfiles(*extract, path, b); err != nil {
				fatal(err)
			}
		}
	}
	doc := strings.Join(sections, "\n")
	if *out == "" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d report(s) to %s\n", len(sections), *out)
}

// extractProfiles writes a bundle's embedded pprof pair (captured by
// the gateway's alert-triggered profiler) next to each other in dir,
// named after the bundle file, so they open directly with go tool
// pprof. Bundles without profiles are skipped with a note — profiling
// is best-effort (cooldown, busy profiler).
func extractProfiles(dir, bundlePath string, b *incident.Bundle) error {
	if b.Profiles == nil {
		fmt.Fprintf(os.Stderr, "ppm-diagnose: %s carries no profiles (capture skipped or pre-profiling bundle)\n", bundlePath)
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := strings.TrimSuffix(filepath.Base(bundlePath), ".json")
	for _, p := range []struct {
		suffix string
		data   []byte
	}{
		{"cpu", b.Profiles.CPU},
		{"heap", b.Profiles.Heap},
	} {
		if len(p.data) == 0 {
			continue
		}
		path := filepath.Join(dir, base+"-"+p.suffix+".pprof")
		if err := os.WriteFile(path, p.data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ppm-diagnose: wrote %s (%d bytes)\n", path, len(p.data))
	}
	return nil
}

// newestBundle picks the latest inc-*.json in the retention ring; the
// zero-padded sequence ids make lexical order chronological.
func newestBundle(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "inc-*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no incident bundles (inc-*.json) in %s", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppm-diagnose:", err)
	os.Exit(1)
}
