// Command ppm-diagnose renders incident flight-recorder bundles (the
// JSON files written by ppm-gateway/ppm-monitor under -incident-dir,
// or fetched from GET /debug/incidents/{id}) into human-readable
// markdown incident reports:
//
//	ppm-diagnose incidents/inc-000003.json
//	ppm-diagnose -dir incidents            # newest bundle in the ring
//	ppm-diagnose -dir incidents -out report.md
//
// The report leads with the ranked per-column drift attribution — the
// REL test battery (two-sample KS per numeric column, chi-squared per
// categorical column, Bonferroni-corrected) between the bundle's
// serving-row reservoir and the trained reference sample — followed by
// the predicted-class histogram shift, the worst-scoring batches with
// their X-Request-IDs, the serving SLO snapshot (stage quantiles and
// slowest-request exemplars), the embedded pprof profile sizes, and
// the drift-timeline excerpt. -extract-profiles DIR additionally
// writes each bundle's CPU+heap pprof pair to DIR for go tool pprof.
//
// Trace mode stitches the span journals each fleet process writes
// under -trace-dir into one cross-process waterfall:
//
//	ppm-diagnose -trace 4a3f... -journals gw=tr/gw,backend=tr/be,monitor=tr/mon
//	ppm-diagnose -trace auto -journals tr/gw,tr/be,tr/mon -html trace.html
//
// -trace auto picks the trace id spanning the most journals (ties
// break toward the most spans, then lexically). The markdown waterfall
// goes to -out/stdout; -html additionally writes a dependency-free
// HTML rendering.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"blackboxval/internal/obs"
	"blackboxval/internal/obs/incident"
	"blackboxval/internal/report"
)

func main() {
	dir := flag.String("dir", "", "incident retention directory; renders the newest bundle (alternative to positional files)")
	out := flag.String("out", "", "output file (empty = stdout)")
	extract := flag.String("extract-profiles", "", "directory receiving each bundle's embedded pprof pair as <bundle>-cpu.pprof / <bundle>-heap.pprof (open with go tool pprof)")
	trace := flag.String("trace", "", "trace id to stitch across -journals into one waterfall (\"auto\" = the id spanning the most journals)")
	journals := flag.String("journals", "", "comma-separated name=dir span journal directories written under -trace-dir (bare dirs use their basename as the service)")
	htmlOut := flag.String("html", "", "trace mode: also write the waterfall as self-contained HTML to this file")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ppm-diagnose [-dir DIR | BUNDLE.json ...] [-out FILE] [-extract-profiles DIR]")
		fmt.Fprintln(os.Stderr, "       ppm-diagnose -trace ID|auto -journals name=dir,... [-out FILE] [-html FILE]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *trace != "" {
		if err := runTrace(*trace, *journals, *out, *htmlOut); err != nil {
			fatal(err)
		}
		return
	}

	paths := flag.Args()
	if *dir != "" {
		newest, err := newestBundle(*dir)
		if err != nil {
			fatal(err)
		}
		paths = append(paths, newest)
	}
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var sections []string
	for _, path := range paths {
		b, err := incident.LoadBundle(path)
		if err != nil {
			fatal(err)
		}
		md, err := report.Markdown(b)
		if err != nil {
			fatal(err)
		}
		sections = append(sections, md)
		if *extract != "" {
			if err := extractProfiles(*extract, path, b); err != nil {
				fatal(err)
			}
		}
	}
	doc := strings.Join(sections, "\n")
	if *out == "" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d report(s) to %s\n", len(sections), *out)
}

// extractProfiles writes a bundle's embedded pprof pair (captured by
// the gateway's alert-triggered profiler) next to each other in dir,
// named after the bundle file, so they open directly with go tool
// pprof. Bundles without profiles are skipped with a note — profiling
// is best-effort (cooldown, busy profiler).
func extractProfiles(dir, bundlePath string, b *incident.Bundle) error {
	if b.Profiles == nil {
		fmt.Fprintf(os.Stderr, "ppm-diagnose: %s carries no profiles (capture skipped or pre-profiling bundle)\n", bundlePath)
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := strings.TrimSuffix(filepath.Base(bundlePath), ".json")
	for _, p := range []struct {
		suffix string
		data   []byte
	}{
		{"cpu", b.Profiles.CPU},
		{"heap", b.Profiles.Heap},
	} {
		if len(p.data) == 0 {
			continue
		}
		path := filepath.Join(dir, base+"-"+p.suffix+".pprof")
		if err := os.WriteFile(path, p.data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ppm-diagnose: wrote %s (%d bytes)\n", path, len(p.data))
	}
	return nil
}

// runTrace is trace mode: load every journal, resolve the trace id
// ("auto" picks the one spanning the most journals), stitch the
// fragments into one waterfall and render it.
func runTrace(traceID, journalSpecs, out, htmlOut string) error {
	frags, err := loadJournals(journalSpecs)
	if err != nil {
		return err
	}
	if traceID == "auto" {
		traceID, err = autoTraceID(frags)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ppm-diagnose: -trace auto picked %s\n", traceID)
	}
	wf, err := obs.StitchTrace(traceID, frags)
	if err != nil {
		return err
	}
	md := wf.Markdown()
	if out == "" {
		fmt.Print(md)
	} else if err := os.WriteFile(out, []byte(md), 0o644); err != nil {
		return err
	} else {
		fmt.Printf("wrote waterfall to %s\n", out)
	}
	if htmlOut != "" {
		if err := os.WriteFile(htmlOut, wf.HTML(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote HTML waterfall to %s\n", htmlOut)
	}
	return nil
}

// loadJournals parses the -journals flag ("name=dir,..." with bare
// dirs named by their basename) and reads each directory's retained
// spans-*.jsonl segments into a service-labelled trace fragment.
func loadJournals(specs string) ([]obs.TraceFragment, error) {
	var frags []obs.TraceFragment
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, dir := "", spec
		if eq := strings.Index(spec, "="); eq >= 0 && !strings.Contains(spec[:eq], "/") {
			name, dir = spec[:eq], spec[eq+1:]
		}
		if name == "" {
			name = filepath.Base(dir)
		}
		spans, err := obs.ReadJournalDir(dir)
		if err != nil {
			return nil, fmt.Errorf("journal %s: %w", dir, err)
		}
		frags = append(frags, obs.TraceFragment{Service: name, Spans: spans})
	}
	if len(frags) == 0 {
		return nil, fmt.Errorf("-trace needs -journals name=dir,... (the -trace-dir of each fleet process)")
	}
	return frags, nil
}

// autoTraceID picks the most interesting trace: the id present in the
// most journals — the one that actually crossed process boundaries —
// with ties broken by span count and then lexically, so the pick is
// deterministic for a fixed set of journals.
func autoTraceID(frags []obs.TraceFragment) (string, error) {
	journalsFor := map[string]int{}
	spansFor := map[string]int{}
	for _, f := range frags {
		seen := map[string]bool{}
		for _, s := range f.Spans {
			if s.TraceID == "" {
				continue
			}
			if !seen[s.TraceID] {
				seen[s.TraceID] = true
				journalsFor[s.TraceID]++
			}
			spansFor[s.TraceID]++
		}
	}
	best := ""
	for id := range journalsFor {
		if best == "" {
			best = id
			continue
		}
		switch {
		case journalsFor[id] != journalsFor[best]:
			if journalsFor[id] > journalsFor[best] {
				best = id
			}
		case spansFor[id] != spansFor[best]:
			if spansFor[id] > spansFor[best] {
				best = id
			}
		case id < best:
			best = id
		}
	}
	if best == "" {
		return "", fmt.Errorf("no traced spans in any journal (were the processes run with -trace-dir and a sampled workload?)")
	}
	return best, nil
}

// newestBundle picks the latest inc-*.json in the retention ring; the
// zero-padded sequence ids make lexical order chronological.
func newestBundle(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "inc-*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no incident bundles (inc-*.json) in %s", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppm-diagnose:", err)
	os.Exit(1)
}
