// Command ppm-diagnose renders incident flight-recorder bundles (the
// JSON files written by ppm-gateway/ppm-monitor under -incident-dir,
// or fetched from GET /debug/incidents/{id}) into human-readable
// markdown incident reports:
//
//	ppm-diagnose incidents/inc-000003.json
//	ppm-diagnose -dir incidents            # newest bundle in the ring
//	ppm-diagnose -dir incidents -out report.md
//
// The report leads with the ranked per-column drift attribution — the
// REL test battery (two-sample KS per numeric column, chi-squared per
// categorical column, Bonferroni-corrected) between the bundle's
// serving-row reservoir and the trained reference sample — followed by
// the predicted-class histogram shift, the worst-scoring batches with
// their X-Request-IDs, and the drift-timeline excerpt.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"blackboxval/internal/obs/incident"
	"blackboxval/internal/report"
)

func main() {
	dir := flag.String("dir", "", "incident retention directory; renders the newest bundle (alternative to positional files)")
	out := flag.String("out", "", "output file (empty = stdout)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ppm-diagnose [-dir DIR | BUNDLE.json ...] [-out FILE]")
		flag.PrintDefaults()
	}
	flag.Parse()

	paths := flag.Args()
	if *dir != "" {
		newest, err := newestBundle(*dir)
		if err != nil {
			fatal(err)
		}
		paths = append(paths, newest)
	}
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var sections []string
	for _, path := range paths {
		b, err := incident.LoadBundle(path)
		if err != nil {
			fatal(err)
		}
		md, err := report.Markdown(b)
		if err != nil {
			fatal(err)
		}
		sections = append(sections, md)
	}
	doc := strings.Join(sections, "\n")
	if *out == "" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d report(s) to %s\n", len(sections), *out)
}

// newestBundle picks the latest inc-*.json in the retention ring; the
// zero-padded sequence ids make lexical order chronological.
func newestBundle(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "inc-*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no incident bundles (inc-*.json) in %s", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppm-diagnose:", err)
	os.Exit(1)
}
