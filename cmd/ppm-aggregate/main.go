// Command ppm-aggregate merges N monitoring replicas into one
// fleet-wide drift timeline. Each replica (ppm-gateway or a future
// sharded monitor) serves its mergeable drift state — window aggregates
// with exact sums and deterministic quantile sketches, plus reference
// distributions — at GET /federate; the aggregator scrapes them on an
// interval, aligns windows by index, merges them in replica order and
// runs the standard alert engine, dashboard and incident capture over
// the merged view:
//
//	ppm-aggregate -replicas a=http://127.0.0.1:8088,b=http://127.0.0.1:8089 \
//	    -addr 127.0.0.1:8090 -alert-rules rules.json
//
// With batches dispatched round-robin across the replicas (ppm-traffic
// send -targets), the merged timeline and its alert decisions are
// bit-equal to what a single node observing the union stream would
// produce (DESIGN.md §13). A replica that stops answering degrades to
// the ppm_federate_stale_shards gauge — visible on the dashboard and
// at /metrics — rather than poisoning the fleet view.
//
// GET / serves the fleet dashboard; /timeline, /federate, /status,
// /healthz, /metrics, /debug/pprof/* and /debug/spans sit beside it.
// -tsdb-dir persists every merged fleet window to an on-disk segment
// store (GET /timeline/range serves the durable history; see
// ppm-backtest).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blackboxval/internal/cli"
	"blackboxval/internal/obs"
)

func main() {
	replicas := flag.String("replicas", "", "comma-separated name=url replica list (required); bare URLs get shard-N names, /federate is appended when the URL has no path")
	addr := flag.String("addr", "127.0.0.1:8090", "fleet dashboard listen address")
	interval := flag.Duration("interval", 2*time.Second, "scrape interval")
	timeout := flag.Duration("replica-timeout", time.Second, "per-replica scrape timeout")
	staleAfter := flag.Duration("stale-after", 0, "replica staleness bound (0 = 5x interval)")
	capacity := flag.Int("capacity", 128, "retained merged fleet windows")
	refresh := flag.Duration("refresh", 2*time.Second, "dashboard auto-refresh interval (<=0 disables)")
	alertRules := flag.String("alert-rules", "", "JSON alert rule file evaluated on merged fleet windows (empty = alerting off)")
	alertWebhook := flag.String("alert-webhook", "", "webhook URL receiving fleet alert events as JSON POSTs")
	incidentDir := flag.String("incident-dir", "", "directory retaining fleet incident files (empty = capture off)")
	incidentMax := flag.Int("incident-max", 0, "retained fleet incident files (0 = default 16)")
	traceDir := flag.String("trace-dir", "", "span journal directory for cross-process trace stitching (empty = in-memory ring only)")
	traceSample := flag.Float64("trace-sample", 1, "deterministic head-sampling rate for federate_scrape traces (<=0 or >1 = sample everything)")
	var tsdbFlags cli.TSDBFlags
	tsdbFlags.RegisterFlags(flag.CommandLine)
	var logCfg obs.LogConfig
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := obs.SetupLogs("ppm-aggregate", logCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	refreshMillis := int(refresh.Milliseconds())
	if refreshMillis <= 0 {
		refreshMillis = -1
	}
	agg, engine, closeAlerts, err := cli.WireFederation(cli.FederationOptions{
		Replicas:        strings.Split(*replicas, ","),
		Interval:        *interval,
		Timeout:         *timeout,
		StaleAfter:      *staleAfter,
		Capacity:        *capacity,
		RefreshMillis:   refreshMillis,
		AlertRulesPath:  *alertRules,
		AlertWebhookURL: *alertWebhook,
		IncidentDir:     *incidentDir,
		IncidentMax:     *incidentMax,
		TraceSampleRate: *traceSample,
		Logger:          logger,
	})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	defer closeAlerts()
	obs.RegisterRuntimeMetrics(obs.Default())
	closeTracing, err := cli.WireTracing(cli.TracingOptions{Dir: *traceDir, Logger: logger})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	defer closeTracing()
	if engine != nil {
		logger.Info("fleet alerting on", "rules", *alertRules, "webhook", *alertWebhook)
	}
	// The merged fleet windows persist the same way a single monitor's
	// do: the aggregator is a WindowSource, so the durable store sees
	// each fleet window exactly once, at close.
	tsdbDB, closeTSDB, err := cli.WireTSDB(agg, tsdbFlags.Options(obs.Default(), logger))
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	defer closeTSDB()
	if tsdbDB != nil {
		logger.Info("durable fleet timeline on", "dir", tsdbFlags.Dir, "retention", tsdbFlags.Retention)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go agg.Run(ctx)

	mux := http.NewServeMux()
	mux.Handle("/", agg.Handler())
	if tsdbDB != nil {
		mux.Handle("/timeline/range", tsdbDB.RangeHandler())
	}
	obs.Mount(mux, obs.Default(), obs.DefaultTracer())
	srv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	logger.Info("fleet aggregator up",
		"dashboard", fmt.Sprintf("http://%s/", *addr),
		"timeline", fmt.Sprintf("http://%s/timeline", *addr),
		"federate", fmt.Sprintf("http://%s/federate", *addr),
		"metrics", fmt.Sprintf("http://%s/metrics", *addr))
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Error("fleet server failed", "err", err)
		os.Exit(1)
	}
}
