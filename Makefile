# Tier-1 gate for this repository (see README.md "Install"): every
# change must keep `make check` green. The race target exercises the
# parallel meta-dataset builder (internal/core/parallel.go) and the
# forest trainer under the race detector in short mode.

GO ?= go

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -short -race ./internal/core/... ./internal/models/...

# Speedup table for EXPERIMENTS.md ("Parallel training" section).
bench:
	$(GO) test -run NONE -bench 'BenchmarkTrainPredictor' -benchtime 20x .
