# Tier-1 gate for this repository (see README.md "Install"): every
# change must keep `make check` green. The race target exercises the
# parallel meta-dataset builder (internal/core/parallel.go), the forest
# trainer, the serving-path packages (gateway proxy + monitor, whose
# shadow tap, /metrics scrape and dashboard are hit concurrently in
# production), and the telemetry registry/span tree plus the alert
# engine, incident flight recorder and durable timeline store
# (internal/obs/...), and the label-feedback store (internal/labels)
# under the race detector in short mode.

GO ?= go

.PHONY: check lint vet build test race bench bench-gateway bench-serving bench-tsdb demo audit fuzz

check: vet build test race

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	# Prometheus exposition-format conformance (obs.Lint) across every
	# registry that serves a /metrics endpoint.
	$(GO) test -run 'Lint|Conformance' ./internal/obs/... ./internal/gateway/... ./internal/monitor/... ./internal/fed/...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -short -race ./internal/core/... ./internal/models/... ./internal/gateway/... ./internal/monitor/... ./internal/obs/... ./internal/stats/... ./internal/fed/... ./internal/labels/...

# Speedup table for EXPERIMENTS.md ("Parallel training" section).
bench:
	$(GO) test -run NONE -bench 'BenchmarkTrainPredictor' -benchtime 20x .

# Proxy-hop overhead table for EXPERIMENTS.md ("Gateway overhead").
bench-gateway:
	$(GO) test -run NONE -bench 'BenchmarkGatewayOverhead' -benchtime 1000x ./internal/gateway/

# Serving SLO observatory benchmark ("Serving SLO observatory" in
# EXPERIMENTS.md): regenerates BENCH_serving.json (per-stage
# p50/p99/p999, rows/sec, allocs/op via ppm-bench -exp serving) and
# runs the allocs/op regression gate, which fails when a per-row
# allocation creeps onto the gateway hot path (skipped under -short).
bench-serving:
	$(GO) run ./cmd/ppm-bench -exp serving
	$(GO) test -run TestServingAllocGate -count=1 -v ./internal/gateway/

# Durable timeline store benchmark ("Telemetry history" in
# EXPERIMENTS.md): regenerates BENCH_tsdb.json (append windows/sec,
# cold segment decode + re-aggregate throughput, range-query p50/p99,
# the eager-vs-lazy compaction determinism check) via ppm-bench -exp
# tsdb, then runs the compaction determinism suite itself.
bench-tsdb:
	$(GO) run ./cmd/ppm-bench -exp tsdb -log-level warn
	$(GO) test -run 'TestCompaction|TestBacktest' -count=1 -v ./internal/obs/tsdb/

# Eight-act smoke test: proxying + /metrics, shadow validation with
# alerting, incident capture with drift attribution, fleet federation
# with stale-shard degradation, lagged label feedback, the serving
# SLO observatory (open-loop ramp past the burn-rate threshold,
# alert-triggered profile capture), distributed tracing (sampled
# ramp stitched across per-process span journals), and the durable
# timeline store (history surviving a restart, ppm-backtest
# bit-reproducing the live alert events) — see scripts/demo.sh.
demo:
	bash scripts/demo.sh

# Deep pass over the serving-path observability stack: format/exposition
# lint, vet, and the race detector (full, not -short) across the
# telemetry store + alert engine + incident flight recorder + trace
# journal/stitcher + durable timeline store (internal/obs/... includes
# internal/obs/incident and internal/obs/tsdb, whose concurrent
# append-vs-query path runs here), the
# gateway, the monitor, the mergeable sketches (internal/stats) and the
# federation aggregator (internal/fed, whose /federate handler and
# ScrapeOnce run concurrently with ObserveRow in production). `make
# check` stays the broad tier-1 gate; `audit` is the focused one to run
# after touching the timeline, alerting, incident, correlation, tracing
# or federation code.
audit: lint
	$(GO) vet ./internal/obs/... ./internal/gateway/... ./internal/monitor/... ./internal/stats/... ./internal/fed/... ./internal/labels/...
	$(GO) test -race ./internal/obs/... ./internal/gateway/... ./internal/monitor/... ./internal/stats/... ./internal/fed/... ./internal/labels/...

# Short coverage-guided fuzz budgets for the deterministic-merge
# invariants — sketch merge (associativity/commutativity vs the union
# stream) and the serialized round-trips — plus the attacker-facing
# wire decoders: the /labels ingestion body, the W3C traceparent
# header parser (every proxied request runs it), and the on-disk
# segment decoder (which must keep the valid prefix of any torn or
# corrupted segment file without panicking).
fuzz:
	$(GO) test -run NONE -fuzz FuzzKLLMerge -fuzztime 10s ./internal/stats
	$(GO) test -run NONE -fuzz FuzzKLLRoundTrip -fuzztime 10s ./internal/stats
	$(GO) test -run NONE -fuzz FuzzLatencyHistMerge -fuzztime 10s ./internal/stats
	$(GO) test -run NONE -fuzz FuzzLabelsDecode -fuzztime 10s ./internal/labels
	$(GO) test -run NONE -fuzz FuzzTraceparentParse -fuzztime 10s ./internal/obs
	$(GO) test -run NONE -fuzz FuzzSegmentDecode -fuzztime 10s ./internal/obs/tsdb
